//! The deterministic parallel execution engine.
//!
//! The simulated Cedar is four largely independent Alliant clusters that
//! interact only through the omega networks, the global memory and the
//! concurrency control buses — the same decomposition the hardware
//! exploits. This engine exploits it in software: each cycle, the
//! cluster-local work (CE engines, prefetch units, cluster cache and
//! memory, CC bus) is sharded across `std::thread::scope` workers, while
//! the genuinely shared components (both omega networks and the
//! global-memory banks) tick on the coordinating thread between two
//! barriers.
//!
//! # Determinism
//!
//! The engine is bit-for-bit equivalent to the single-threaded engine in
//! [`Machine::run`](crate::machine::Machine::run), not merely "equivalent
//! up to reordering". That follows from three facts:
//!
//! 1. **Cluster state is disjoint.** A CE only touches its own cluster's
//!    cache, TLB and CC bus, so shards never share mutable state.
//! 2. **Cross-cluster traffic is per-port.** A CE (and its prefetch unit)
//!    injects only at its own forward-network port, and acceptance
//!    depends only on that port's injector occupancy
//!    ([`Omega::injector_free`]), which is frozen for the cycle once the
//!    serial network tick has run. Workers therefore record injections in
//!    per-port staging buffers ([`PortStage`]) against a precomputed free
//!    count, and the coordinator replays them into the real network at
//!    the end-of-cycle barrier in (cluster id, CE id) order — exactly the
//!    order the serial engine's CE loop performs them.
//! 3. **Within a cycle, injections are invisible.** The serial tick moves
//!    network words *before* ticking CEs, so a packet injected during the
//!    CE phase is not observed by anything until the next cycle; applying
//!    it at the barrier instead of mid-phase changes nothing.
//!
//! Tracer events posted by CEs are likewise buffered per shard and merged
//! in the same order. The one model the barrier scheme cannot reproduce
//! is demand paging, where same-cycle faults from different clusters race
//! for the machine-wide page table; with [`VmConfig::enabled`]
//! (`crate::config::VmConfig::enabled`) set the machine silently falls
//! back to the serial engine.
//!
//! [`Omega::injector_free`]: crate::network::Omega::injector_free

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::ce::{min_event, CeContext, CeEngine};
use crate::error::{MachineError, Result};
use crate::ids::CeId;
use crate::machine::{Cluster, Machine, Watchdog, STUCK_SYNC_CHECKS};
use crate::monitor::{EventTracer, Histogrammer};
use crate::network::packet::{Packet, Payload, Stream};
use crate::network::{InjectPort, NetSink};
use crate::sched::{BarrierDef, CounterDef};
use crate::stats::UtilSample;
use crate::time::Cycle;
use crate::trace::{profiled, region};
use crate::vm::PageTable;

/// A reusable sense-reversing barrier. `std::sync::Barrier` parks and
/// wakes through a mutex/condvar pair, which costs microseconds per wait;
/// at two waits per simulated cycle that would swamp the cluster work.
/// This one spins briefly and then yields, so it stays cheap both on
/// dedicated cores and on oversubscribed hosts.
struct SpinBarrier {
    members: usize,
    /// Spin iterations before falling back to `yield_now`. Zero when the
    /// host has fewer cores than barrier members: spinning there only
    /// burns the timeslice the straggler needs.
    max_spins: u32,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(members: usize) -> SpinBarrier {
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        SpinBarrier {
            members,
            max_spins: if cores >= members { 128 } else { 0 },
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.members {
            self.arrived.store(0, Ordering::Relaxed);
            self.generation
                .store(generation.wrapping_add(1), Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if spins < self.max_spins {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// A per-port staging buffer standing in for the forward network during
/// the sharded cluster phase: accepts up to the port's real free injector
/// slots (computed by the coordinator after the serial network tick) and
/// records the packets for deterministic replay at the barrier.
struct PortStage {
    /// The global network port this stage fronts (the owning CE's port).
    port: usize,
    /// Injector slots still free this cycle.
    free: usize,
    /// Accepted packets, in injection order.
    staged: Vec<Packet>,
}

impl InjectPort for PortStage {
    fn try_inject(&mut self, port: usize, packet: Packet) -> bool {
        debug_assert_eq!(port, self.port, "CE injected at a foreign port");
        if self.free == 0 {
            return false;
        }
        self.free -= 1;
        self.staged.push(packet);
        true
    }
}

/// One worker's slice of the machine: a contiguous run of clusters and
/// their engines, plus the staging state that decouples the shard from
/// everything shared.
struct Shard {
    first_cluster: usize,
    clusters: Vec<Cluster>,
    /// Engines of the shard's CEs, indexed by CE id minus the shard base.
    engines: Vec<Option<CeEngine>>,
    /// One staging buffer per engine slot (port = shard base + index).
    stages: Vec<PortStage>,
    /// Per-cycle event buffer, merged into the machine tracer in cluster
    /// order at the barrier.
    events: EventTracer,
    /// Scratch page table handed to `CeContext`. Never touched: the
    /// parallel engine only runs with VM modelling off.
    page_table: PageTable,
    /// All local engines finished, as of the last tick.
    done: bool,
}

impl Shard {
    /// The cluster phase of one cycle, mirroring the serial engine's
    /// order: every CC bus first, then the engines in CE-id order.
    fn tick(&mut self, now: Cycle, counters: &[CounterDef], barriers: &[BarrierDef]) {
        let Shard {
            first_cluster,
            clusters,
            engines,
            stages,
            events,
            page_table,
            done,
            ..
        } = self;
        for cl in clusters.iter_mut() {
            cl.ccbus.tick(now);
        }
        let mut all_done = true;
        for (i, e) in engines.iter_mut().enumerate() {
            let Some(e) = e else { continue };
            // Lowered mode: parked in a fused timed stall (or finished) —
            // one attribution increment, no context plumbing.
            let cluster = &mut clusters[e.cluster().0 - *first_cluster];
            if e.try_quick_tick(now, &cluster.ccbus) {
                all_done &= e.is_done();
                continue;
            }
            let mut ctx = CeContext {
                forward: &mut stages[i],
                cache: &mut cluster.cache,
                ccbus: &mut cluster.ccbus,
                tlb: &mut cluster.tlb,
                page_table,
                counters,
                barriers,
                tracer: events,
            };
            e.tick(now, &mut ctx);
            all_done &= e.is_done();
        }
        *done = all_done;
    }
}

/// Routes reverse-network deliveries into the engines now living inside
/// shards — the parallel twin of the serial engine's `CeSink`, running on
/// the coordinator between barriers (the per-delivery lock is never
/// contended there).
struct ShardCeSink<'a> {
    shards: &'a [Mutex<Shard>],
    /// Shard index owning each cluster.
    cluster_of: &'a [usize],
    ces_per_cluster: usize,
    histogram: &'a mut Arc<Histogrammer>,
    now: Cycle,
}

impl NetSink for ShardCeSink<'_> {
    fn try_begin(&mut self, _port: usize) -> bool {
        true
    }

    fn deliver(&mut self, port: usize, packet: Packet) {
        if let Payload::Reply(r) = packet.payload {
            if matches!(r.stream, Stream::Prefetch { .. }) {
                Arc::make_mut(self.histogram)
                    .record(self.now.saturating_since(r.req_issued) as usize);
            }
            let Some(&shard) = self.cluster_of.get(port / self.ces_per_cluster) else {
                return;
            };
            let mut sh = self.shards[shard]
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let idx = port - sh.first_cluster * self.ces_per_cluster;
            if let Some(Some(e)) = sh.engines.get_mut(idx) {
                e.receive(self.now, r);
            }
        } else {
            debug_assert!(false, "request packet delivered to CE side");
        }
    }
}

/// Fill `out` with cumulative per-CE utilization samples read out of the
/// shards, in CE-id order (shards partition the CEs contiguously). The
/// parallel twin of [`crate::machine::fill_util_samples`].
fn fill_shard_samples(shards: &[Mutex<Shard>], out: &mut Vec<UtilSample>) {
    out.clear();
    for sm in shards {
        let sh = sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        out.extend(sh.engines.iter().map(|e| match e {
            Some(e) => {
                let s = e.stats();
                UtilSample {
                    busy: s.busy,
                    stall_mem: s.stall_mem,
                    stall_sync: s.stall_sync,
                    idle: s.idle,
                }
            }
            None => UtilSample::default(),
        }));
    }
}

/// The shard half of `Machine::next_machine_event`: fold the CC buses and
/// engines living inside the shards. Also reports whether every CE is
/// done, so the caller can tell completion (no skip needed — the loop
/// head breaks) from deadlock (jump past the cycle limit).
///
/// The `done` flag is only meaningful when the returned event is `None`;
/// the fold bails out early once the next cycle is known to be live.
fn next_shard_event(
    shards: &[Mutex<Shard>],
    now: Cycle,
    counters: &[CounterDef],
) -> (Option<Cycle>, bool) {
    let soon = now + 1;
    let mut best: Option<Cycle> = None;
    let mut all_done = true;
    for sm in shards {
        let sh = sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        all_done &= sh.done;
        for cl in &sh.clusters {
            best = min_event(best, cl.ccbus.next_event(now));
            if best == Some(soon) {
                return (best, false);
            }
        }
        for e in sh.engines.iter().flatten() {
            let ccbus = &sh.clusters[e.cluster().0 - sh.first_cluster].ccbus;
            best = min_event(best, e.next_event(now, ccbus, counters));
            if best == Some(soon) {
                return (best, false);
            }
        }
    }
    (best, all_done)
}

/// Why the parallel run loop stopped early. The loop cannot build a
/// [`MachineError::Deadlock`] itself — the hang report needs the engines
/// back inside the machine — so it breaks with this marker and the error
/// is materialized after reassembly.
enum Stop {
    Limit,
    Deadlock(&'static str),
    Faulted(CeId, String),
}

/// The parallel twin of `Machine::progress_verdict`: inspect the engines
/// inside the shards. `machine_event` is the full event horizon (networks,
/// memory, fault schedule, shards) at `now`.
fn shard_progress_verdict(
    shards: &[Mutex<Shard>],
    watchdog: &mut Watchdog,
    now: Cycle,
    machine_event: Option<Cycle>,
) -> Option<Stop> {
    watchdog.arm_next(now);
    let mut unfinished = 0usize;
    let mut sync_waiting = 0usize;
    for sm in shards {
        let sh = sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for e in sh.engines.iter().flatten() {
            if let Some(reason) = e.fault_exhausted() {
                return Some(Stop::Faulted(e.id(), reason));
            }
            if !e.is_done() {
                unfinished += 1;
                if e.sync_blocked() {
                    sync_waiting += 1;
                }
            }
        }
    }
    // The caller only inspects while work remains (the loop head breaks
    // on completion), so a drained event horizon means a dead machine.
    if machine_event.is_none() {
        return Some(Stop::Deadlock("event starvation"));
    }
    if unfinished > 0 && sync_waiting == unfinished {
        watchdog.sync_stuck += 1;
        if watchdog.sync_stuck >= STUCK_SYNC_CHECKS {
            return Some(Stop::Deadlock("synchronization stall"));
        }
    } else {
        watchdog.sync_stuck = 0;
    }
    None
}

impl Machine {
    /// The parallel run loop: shard the clusters across
    /// `effective_threads` scoped workers and step cycles with a
    /// two-barrier exchange per cycle. See the module docs for the
    /// determinism argument.
    ///
    /// Fast-forward runs on the coordinator after the exchange phase: at
    /// that point the machine state is exactly the serial engine's
    /// post-tick state, so the skip decision (and the bulk credit) is
    /// identical to the serial one. Jumping `now` between iterations is
    /// transparent to the parked workers — the cycle atomic is re-stored
    /// every iteration.
    pub(crate) fn run_loop_parallel(
        &mut self,
        start: Cycle,
        limit: u64,
        fastfwd: bool,
    ) -> Result<()> {
        let threads = self.effective_threads();
        debug_assert!(threads > 1, "parallel loop needs two or more workers");
        let cpc = self.cfg.ces_per_cluster;
        let n_clusters = self.cfg.clusters;

        // Partition the clusters (and their engines) contiguously, as
        // evenly as possible.
        let mut cluster_iter = std::mem::take(&mut self.clusters).into_iter();
        let mut engine_iter = std::mem::take(&mut self.engines).into_iter();
        let mut shards: Vec<Mutex<Shard>> = Vec::with_capacity(threads);
        let mut cluster_of = Vec::with_capacity(n_clusters);
        let mut first_cluster = 0;
        for w in 0..threads {
            let count = n_clusters / threads + usize::from(w < n_clusters % threads);
            let clusters: Vec<Cluster> = cluster_iter.by_ref().take(count).collect();
            let engines: Vec<Option<CeEngine>> = engine_iter.by_ref().take(count * cpc).collect();
            let stages = (0..count * cpc)
                .map(|i| PortStage {
                    port: first_cluster * cpc + i,
                    free: 0,
                    staged: Vec::new(),
                })
                .collect();
            let done = engines.iter().flatten().all(CeEngine::is_done);
            cluster_of.extend(std::iter::repeat_n(w, count));
            shards.push(Mutex::new(Shard {
                first_cluster,
                clusters,
                engines,
                stages,
                events: EventTracer::with_capacity(self.tracer.capacity()),
                page_table: PageTable::new(),
                done,
            }));
            first_cluster += count;
        }

        let result = {
            let Machine {
                now,
                forward,
                reverse,
                gmem,
                counters,
                barriers,
                tracer,
                latency_histogram,
                timeline,
                util_scratch,
                fastfwd_skipped,
                fault_sched,
                profiler,
                ..
            } = &mut *self;
            let counters: &[CounterDef] = counters;
            let barriers: &[BarrierDef] = barriers;
            let go = SpinBarrier::new(threads);
            let handoff = SpinBarrier::new(threads);
            let stop = AtomicBool::new(false);
            let cycle = AtomicU64::new(now.0);
            let shards = &shards;

            std::thread::scope(|s| {
                for shard in &shards[1..] {
                    let (go, handoff, stop, cycle) = (&go, &handoff, &stop, &cycle);
                    s.spawn(move || loop {
                        go.wait();
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        let t = Cycle(cycle.load(Ordering::Acquire));
                        shard
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .tick(t, counters, barriers);
                        handoff.wait();
                    });
                }

                let mut watchdog = Watchdog::new(start);
                let result = loop {
                    let ces_done = shards.iter().all(|s| {
                        s.lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .done
                    });
                    if ces_done && forward.is_idle() && reverse.is_idle() && gmem.is_idle() {
                        break Ok(());
                    }
                    // Watchdog before the budget check, as in the serial
                    // loop: a true deadlock surfaces as `Deadlock`.
                    if watchdog.due(*now) {
                        let t = *now;
                        let mut ev = min_event(forward.next_event(t), reverse.next_event(t));
                        ev = min_event(ev, gmem.next_event(t));
                        if let Some(fs) = fault_sched.as_ref() {
                            ev = min_event(ev, fs.next_event(t));
                        }
                        let (shard_ev, _) = next_shard_event(shards, t, counters);
                        ev = min_event(ev, shard_ev);
                        if let Some(stop) = shard_progress_verdict(shards, &mut watchdog, t, ev) {
                            break Err(stop);
                        }
                    }
                    if now.saturating_since(start) > limit {
                        break Err(Stop::Limit);
                    }
                    // Serial phase, in the serial engine's order: fault
                    // schedule, memory, reverse network (delivering into
                    // shard engines), forward network.
                    *now += 1;
                    let t = *now;
                    forward.set_trace_now(t);
                    reverse.set_trace_now(t);
                    if let Some(fs) = fault_sched.as_mut() {
                        profiled(profiler, region::FAULTS, || {
                            fs.apply_due(t, forward, reverse, gmem);
                        });
                    }
                    profiled(profiler, region::GMEM, || gmem.tick(t, reverse));
                    profiled(profiler, region::REVERSE, || {
                        let mut sink = ShardCeSink {
                            shards,
                            cluster_of: &cluster_of,
                            ces_per_cluster: cpc,
                            histogram: latency_histogram,
                            now: t,
                        };
                        // Constant epoch: the CE side always accepts.
                        reverse.tick_epoch(&mut sink, 0);
                    });
                    profiled(profiler, region::FORWARD, || {
                        let epoch = gmem.accept_epoch();
                        forward.tick_epoch(&mut *gmem, epoch);
                    });
                    // Freeze this cycle's injector capacity into the
                    // staging buffers.
                    for sm in shards.iter() {
                        let mut sh = sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        for st in &mut sh.stages {
                            st.free = forward.injector_free(st.port);
                            debug_assert!(st.staged.is_empty(), "stage not drained");
                        }
                    }
                    cycle.store(t.0, Ordering::Release);

                    // Cluster phase: all workers (this thread is shard 0's).
                    go.wait();
                    profiled(profiler, region::CLUSTER, || {
                        shards[0]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .tick(t, counters, barriers);
                    });
                    handoff.wait();

                    // Exchange phase: replay staged traffic in (cluster,
                    // CE) order — the serial engine's exact order.
                    profiled(profiler, region::EXCHANGE, || {
                        for sm in shards.iter() {
                            let mut sh =
                                sm.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                            let Shard { stages, events, .. } = &mut *sh;
                            for st in stages.iter_mut() {
                                for pkt in st.staged.drain(..) {
                                    let accepted = forward.try_inject(st.port, pkt);
                                    debug_assert!(accepted, "staged injection exceeded capacity");
                                }
                            }
                            tracer.absorb(events);
                            events.clear();
                        }
                    });
                    if timeline.due(t) {
                        profiled(profiler, region::TIMELINE, || {
                            fill_shard_samples(shards, util_scratch);
                            timeline.record(util_scratch);
                        });
                    }

                    // Fast-forward: the state here equals the serial
                    // engine's post-tick state, so the same skip decision
                    // applies. Workers are parked at `go`; they observe
                    // nothing until the cycle atomic is stored again.
                    if fastfwd && forward.is_idle() && reverse.is_idle() {
                        let soon = t + 1;
                        let mut ev = gmem.next_event(t);
                        if ev != Some(soon) {
                            if let Some(fs) = fault_sched.as_ref() {
                                ev = min_event(ev, fs.next_event(t));
                            }
                        }
                        let mut ces_done = false;
                        if ev != Some(soon) {
                            let (shard_ev, done) = next_shard_event(shards, t, counters);
                            ev = min_event(ev, shard_ev);
                            ces_done = done;
                        }
                        let deadlock_cap = Cycle(start.0.saturating_add(limit).saturating_add(2));
                        let target = match ev {
                            Some(e) if e > soon => Some(e.min(deadlock_cap)),
                            Some(_) => None,
                            None if ces_done => None,
                            None => Some(deadlock_cap),
                        };
                        if let Some(target) = target {
                            profiled(profiler, region::FASTFWD, || {
                                while *now + 1 < target {
                                    let boundary = timeline.next_boundary();
                                    let chunk_end = boundary.min(Cycle(target.0 - 1)).max(*now + 1);
                                    let k = chunk_end - *now;
                                    gmem.skip(k);
                                    for sm in shards.iter() {
                                        let mut sh = sm
                                            .lock()
                                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                                        for e in sh.engines.iter_mut().flatten() {
                                            e.skip(*now, k);
                                        }
                                    }
                                    *fastfwd_skipped += k;
                                    *now = chunk_end;
                                    if timeline.due(*now) {
                                        fill_shard_samples(shards, util_scratch);
                                        timeline.record(util_scratch);
                                    }
                                }
                            });
                        }
                    }
                };
                stop.store(true, Ordering::Release);
                go.wait();
                result
            })
        };

        // Reassemble the machine whether the run finished or stopped
        // early: `report`/`stats` — and a hang report — need the engines
        // back in place.
        for sm in shards {
            let sh = sm
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            self.clusters.extend(sh.clusters);
            self.engines.extend(sh.engines);
        }
        match result {
            Ok(()) => Ok(()),
            Err(Stop::Limit) => Err(MachineError::CycleLimitExceeded { limit }),
            Err(Stop::Deadlock(kind)) => Err(MachineError::Deadlock {
                report: Box::new(self.hang_report(kind)),
            }),
            Err(Stop::Faulted(ce, reason)) => Err(MachineError::Faulted { ce, reason }),
        }
    }
}

//! The computational element (CE) execution engine.
//!
//! Each CE is a pipelined 68020-compatible processor with a vector unit:
//! eight 32-word vector registers, register–memory vector instructions
//! with one memory operand, 11.8 MFLOPS peak on chained 64-bit operations.
//! The engine executes a [`Program`] as a state machine advanced one cycle
//! at a time, interacting with the shared cluster cache, its private
//! prefetch unit, the forward network port and the concurrency control
//! bus.

use std::sync::Arc;

use crate::cache::{CacheAccess, ClusterCache};
use crate::ccbus::CcBus;
use crate::config::{CeConfig, MachineConfig};
use crate::fault::{CeFaultCtl, CtlPoll, FaultCtlStats, ReplyAction};
use crate::ids::{CeId, ClusterId};
use crate::lower::{LProgram, UOp};
use crate::memory::address::{module_of, page_of};
use crate::memory::sync::{Rel, SyncInstr, SyncOpKind, SyncOutcome};
use crate::monitor::Histogrammer;
use crate::network::packet::{MemReply, MemRequest, Packet, Payload, RequestKind, Stream};
use crate::network::InjectPort;
use crate::prefetch::{Pfu, PrefetchStats};
use crate::program::{Block, MemOperand, Op, Program, VectorOp};
use crate::sched::{BarrierDef, BarrierScope, CounterDef, EPOCH_SPACING};
use crate::time::Cycle;
use crate::trace::{class, hop, CeTraceCtl, TraceEvent};
use crate::vm::Tlb;

/// Everything a CE touches outside itself during one tick.
pub struct CeContext<'a> {
    /// The forward network (request injection at this CE's port): the
    /// [`Omega`](crate::network::Omega) itself on the single-threaded
    /// engine, a per-port staging buffer under the parallel engine.
    pub forward: &'a mut dyn InjectPort,
    /// The CE's cluster's shared cache.
    pub cache: &'a mut ClusterCache,
    /// The CE's cluster's concurrency control bus.
    pub ccbus: &'a mut CcBus,
    /// The CE's cluster's TLB (used when VM modelling is enabled).
    pub tlb: &'a mut Tlb,
    /// The machine-wide page table (used when VM modelling is enabled).
    pub page_table: &'a mut crate::vm::PageTable,
    /// Machine counter registry.
    pub counters: &'a [CounterDef],
    /// Machine barrier registry.
    pub barriers: &'a [BarrierDef],
    /// The external event tracer (software event posting).
    pub tracer: &'a mut crate::monitor::EventTracer,
}

/// Per-CE execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CeStats {
    /// Floating-point operations performed.
    pub flops: u64,
    /// Vector elements processed.
    pub vector_elements: u64,
    /// Cycles in which the CE made forward progress (issued or retired
    /// work, including modelled fixed-latency compute stalls).
    pub busy: u64,
    /// Cycles after the CE's program completed while the rest of the
    /// machine was still running.
    pub idle: u64,
    /// Cycles spent blocked waiting on memory (vector/scalar data).
    pub stall_mem: u64,
    /// Cycles spent blocked on synchronization (counters, barriers,
    /// fences).
    pub stall_sync: u64,
    /// TLB misses taken (VM modelling enabled only).
    pub tlb_misses: u64,
    /// Hard (first-touch) page faults taken (VM modelling enabled only).
    pub page_faults: u64,
    /// Cycles spent in virtual-memory activity (TLB misses + faults).
    pub vm_cycles: u64,
    /// Cycle at which the program finished (0 if still running).
    pub done_at: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GbPhase {
    AwaitArrive,
    PollWait { at: Cycle },
    AwaitPoll,
}

#[derive(Debug, Clone, Copy)]
enum CeState {
    Fetch,
    Stall {
        until: Cycle,
    },
    VectorDirect {
        base: u64,
        stride: i64,
        length: u32,
        issued: u32,
        completed: u32,
        start_at: Cycle,
        /// Gather: element addresses are pseudo-randomly scattered.
        gather: bool,
    },
    VectorPref {
        length: u32,
        consumed: u32,
        start_at: Cycle,
    },
    VectorGWrite {
        base: u64,
        stride: i64,
        length: u32,
        issued: u32,
        start_at: Cycle,
        /// Scatter: element addresses are pseudo-randomly scattered.
        scatter: bool,
    },
    VectorCache {
        base: u64,
        stride: i64,
        write: bool,
        length: u32,
        issued: u32,
        last_ready: Cycle,
        start_at: Cycle,
    },
    AwaitScalarRead,
    AwaitSync,
    AwaitCounter,
    AwaitClusterBarrier,
    GlobalBarrier {
        barrier: usize,
        epoch: u64,
        phase: GbPhase,
        /// Consecutive failed polls (drives exponential backoff so
        /// spinning CEs do not saturate the barrier's memory module).
        misses: u32,
    },
    AwaitFence,
    Done,
}

#[derive(Debug, Clone, Copy)]
enum FrameKind {
    Root,
    Repeat {
        remaining: u32,
    },
    SelfSched {
        counter: usize,
        limit: u64,
        chunk: u32,
        dispatch_cost: u32,
        epoch: u64,
        chunk_end: u64,
    },
}

#[derive(Debug, Clone)]
struct Frame {
    block: Block,
    pc: usize,
    kind: FrameKind,
}

/// A flat loop frame for lowered execution: the loop body's first
/// micro-op (`head`), the matching end-marker index (`end`), and the
/// same per-kind bookkeeping the interpreter keeps in [`Frame`].
#[derive(Debug, Clone, Copy)]
struct LFrame {
    head: u32,
    end: u32,
    kind: FrameKind,
}

/// Lowered-execution state: the compiled micro-op stream, a single flat
/// program counter, and the flat loop-frame stack. Present only when the
/// machine runs with lowering enabled; when absent the engine is the
/// unmodified tree-walking interpreter (the differential oracle).
#[derive(Debug)]
struct FlatCtl {
    prog: Arc<LProgram>,
    pc: u32,
    frames: Vec<LFrame>,
    /// An [`UOp::ArmFire`] has executed its arm phase and owes the fire.
    fire_pending: bool,
}

enum Step {
    Progress,
    Blocked,
}

/// One CE's execution engine.
pub struct CeEngine {
    id: CeId,
    cluster: ClusterId,
    ce_in_cluster: usize,
    /// Shared, immutable CE configuration (one allocation machine-wide).
    cfg: Arc<CeConfig>,
    vm_enabled: bool,
    page_words: u64,
    tlb_miss_cycles: u32,
    page_fault_cycles: u32,
    modules: usize,
    frames: Vec<Frame>,
    /// Lowered-execution state (`None`: tree-walking interpreter).
    flat: Option<FlatCtl>,
    /// Lowered-mode quiescent horizon: strictly before this cycle a full
    /// [`CeEngine::tick`] is known to reduce to exactly one attribution
    /// increment, so the run loop may take the quick-tick path. Replies
    /// clear it ([`CeEngine::receive`]); every full tick recomputes it.
    quiet_until: Cycle,
    indices: Vec<u64>,
    state: CeState,
    pfu: Pfu,
    pending_pkt: Option<Packet>,
    outstanding_reads: u32,
    outstanding_writes: u32,
    direct_ready: std::collections::VecDeque<Cycle>,
    scalar_ready: Option<Cycle>,
    sync_result: Option<SyncOutcome>,
    /// Next epoch per counter id (flat, lazily grown — counter ids are
    /// small dense registry indices, so a `Vec` beats hashing on the
    /// dispatch path).
    counter_epochs: Vec<u64>,
    /// Uses per barrier id (flat, lazily grown like `counter_epochs`).
    barrier_uses: Vec<u64>,
    /// Elected to fetch the next shared-SDOALL value; waiting for the
    /// port to free.
    sdoall_must_fetch: bool,
    /// The shared-SDOALL fetch is in flight; its reply must be posted to
    /// the cluster bus.
    sdoall_awaiting_reply: bool,
    ces_per_cluster: usize,
    vm_stall_until: Cycle,
    /// Retry controller for sequenced global-memory operations; allocated
    /// only when the machine runs under an enabled fault plan.
    fault_ctl: Option<Box<CeFaultCtl>>,
    /// Next retry-protocol sequence number (sequence 0 means unsequenced,
    /// so numbering starts at 1).
    next_seq: u64,
    /// Causal-tracing controller; allocated only when the machine runs
    /// with journey tracing enabled.
    trace_ctl: Option<Box<CeTraceCtl>>,
    stats: CeStats,
}

impl std::fmt::Debug for CeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CeEngine")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("frames", &self.frames.len())
            .finish_non_exhaustive()
    }
}

impl CeEngine {
    /// Build an engine for CE `id` loaded with `program`. The CE
    /// configuration is shared machine-wide via `ce_cfg` (one allocation,
    /// not a per-engine clone). When `lowered` carries the program's
    /// compiled form the engine executes the flat micro-op stream;
    /// otherwise it runs the tree-walking interpreter.
    pub fn new(
        id: CeId,
        cfg: &MachineConfig,
        ce_cfg: Arc<CeConfig>,
        program: Program,
        lowered: Option<Arc<LProgram>>,
    ) -> CeEngine {
        let ces_per_cluster = cfg.ces_per_cluster;
        let root = Frame {
            block: program.into_body(),
            pc: 0,
            kind: FrameKind::Root,
        };
        let trace_plan = cfg.trace.as_ref().filter(|p| p.enabled());
        let mut pfu = Pfu::new(
            id,
            &cfg.prefetch,
            cfg.vm.page_words,
            cfg.global_memory.modules,
            cfg.faults
                .as_ref()
                .filter(|p| p.enabled())
                .map(|p| u64::from(p.timeout_cycles)),
        );
        if let Some(p) = trace_plan {
            pfu.enable_trace(p.seed, p.sample_ppm);
        }
        CeEngine {
            id,
            cluster: id.cluster(ces_per_cluster),
            ce_in_cluster: id.index_in_cluster(ces_per_cluster),
            cfg: ce_cfg,
            vm_enabled: cfg.vm.enabled,
            page_words: cfg.vm.page_words,
            tlb_miss_cycles: cfg.vm.tlb_miss_cycles,
            page_fault_cycles: cfg.vm.page_fault_cycles,
            modules: cfg.global_memory.modules,
            frames: vec![root],
            flat: lowered.map(|prog| FlatCtl {
                prog,
                pc: 0,
                frames: Vec::new(),
                fire_pending: false,
            }),
            quiet_until: Cycle::ZERO,
            indices: Vec::new(),
            state: CeState::Fetch,
            pfu,
            pending_pkt: None,
            outstanding_reads: 0,
            outstanding_writes: 0,
            direct_ready: std::collections::VecDeque::new(),
            scalar_ready: None,
            sync_result: None,
            counter_epochs: Vec::new(),
            barrier_uses: Vec::new(),
            sdoall_must_fetch: false,
            sdoall_awaiting_reply: false,
            ces_per_cluster,
            vm_stall_until: Cycle::ZERO,
            fault_ctl: cfg
                .faults
                .as_ref()
                .filter(|p| p.enabled())
                .map(|p| Box::new(CeFaultCtl::new(p))),
            next_seq: 1,
            trace_ctl: trace_plan
                .map(|p| Box::new(CeTraceCtl::new(p.seed, p.sample_ppm, id.0 as u16))),
            stats: CeStats::default(),
        }
    }

    /// This CE's id.
    pub fn id(&self) -> CeId {
        self.id
    }

    /// This CE's cluster.
    pub fn cluster(&self) -> ClusterId {
        self.cluster
    }

    /// True when the program has run to completion and every generated
    /// request has left the CE (including retries still awaiting their
    /// first successful reply).
    pub fn is_done(&self) -> bool {
        matches!(self.state, CeState::Done)
            && self.pending_pkt.is_none()
            && self.fault_ctl.as_deref().is_none_or(CeFaultCtl::is_empty)
    }

    /// Execution statistics.
    pub fn stats(&self) -> CeStats {
        self.stats
    }

    /// Retract `cycles` idle ticks. The partitioned parallel engine uses
    /// this when a chunk overshoots the machine's completion cycle: every
    /// overshot tick of a done CE is a pure `idle += 1` (nothing else in
    /// the engine moves once `is_done` holds), so subtracting the
    /// overshoot restores the serial loop's statistics exactly.
    pub(crate) fn uncount_idle(&mut self, cycles: u64) {
        debug_assert!(self.is_done(), "only a done CE accrues retractable idle");
        self.stats.idle -= cycles;
    }

    /// Prefetch-unit statistics (flushing the in-progress trace).
    pub fn prefetch_stats(&mut self) -> PrefetchStats {
        self.pfu.flush_trace();
        self.pfu.stats()
    }

    /// Prefetch-unit statistics without flushing the in-progress trace
    /// (read-only snapshots mid-run; an active fire's latency samples are
    /// not yet folded in).
    pub fn prefetch_stats_raw(&self) -> PrefetchStats {
        self.pfu.stats()
    }

    /// Retry-controller counters (zero when faults are disabled).
    pub fn fault_stats(&self) -> FaultCtlStats {
        self.fault_ctl
            .as_deref()
            .map(CeFaultCtl::stats)
            .unwrap_or_default()
    }

    /// Retry-latency histogram, when a retry controller exists.
    pub(crate) fn fault_retry_latency(&self) -> Option<&Histogrammer> {
        self.fault_ctl.as_deref().map(CeFaultCtl::retry_latency)
    }

    /// Tracked operations still awaiting a successful reply.
    pub(crate) fn fault_pending(&self) -> u64 {
        self.fault_ctl.as_deref().map_or(0, |c| c.pending() as u64)
    }

    /// The failure description once the retry controller gave up on an
    /// operation (the machine aborts with `MachineError::Faulted`).
    pub(crate) fn fault_exhausted(&self) -> Option<String> {
        self.fault_ctl
            .as_deref()
            .and_then(|c| c.exhausted().map(str::to_string))
    }

    /// True when the engine is parked in a synchronization wait that only
    /// another CE's progress can resolve — the states the forward-progress
    /// watchdog counts as potentially deadlocked. Waits that resolve
    /// through traffic or the retry controller (scalar reads, sync
    /// replies, fences) are excluded: those always keep an event pending.
    pub(crate) fn sync_blocked(&self) -> bool {
        matches!(
            self.state,
            CeState::GlobalBarrier { .. } | CeState::AwaitClusterBarrier | CeState::AwaitCounter
        )
    }

    /// Compact Debug rendering of the engine state for hang reports.
    pub(crate) fn hang_state(&self) -> String {
        let mut s = format!("{:?}", self.state);
        if s.len() > 48 {
            s.truncate(47);
            s.push('…');
        }
        s
    }

    /// Handle a reply arriving from the reverse network.
    pub fn receive(&mut self, now: Cycle, reply: MemReply) {
        // Replies are the only external push into a CE (bus grants are
        // pulled): any arrival may invalidate the quiescent horizon, so
        // drop it and let the next full tick recompute.
        self.quiet_until = Cycle::ZERO;
        if let Some(ctl) = self.fault_ctl.as_deref_mut() {
            if reply.seq != 0 {
                match ctl.on_reply(now, &reply) {
                    ReplyAction::Deliver => {}
                    // Duplicate of an already-delivered reply, or a NACK
                    // the controller will resend after backoff.
                    ReplyAction::Stale | ReplyAction::Nacked => return,
                }
            } else if reply.nack {
                // Unsequenced (prefetch) NACK: discard — the prefetch
                // unit's own timeout re-requests the missing element.
                return;
            }
        }
        // Every reply surviving the retry filter above is a real delivery:
        // close the journey at the CE. Resends share the original id and
        // assembly keeps the earliest stamp per hop, so duplicates are
        // harmless.
        if reply.trace != 0 {
            if let Some(tc) = self.trace_ctl.as_deref_mut() {
                tc.stamp(reply.trace, hop::RETIRE, 0, now);
            }
        }
        match reply.stream {
            Stream::Prefetch { elem, fire_seq } => self.pfu.receive(now, elem, fire_seq),
            Stream::Direct { .. } => self
                .direct_ready
                .push_back(now + u64::from(self.cfg.global_read_extra)),
            Stream::Scalar => {
                self.scalar_ready = Some(now + u64::from(self.cfg.global_read_extra));
            }
            Stream::Sync => self.sync_result = Some(SyncOutcome::decode(reply.value)),
            Stream::WriteAck => {
                self.outstanding_writes = self.outstanding_writes.saturating_sub(1);
            }
        }
    }

    /// The earliest future cycle at which this engine can change
    /// externally visible state, or `None` when it is waiting on something
    /// another subsystem must deliver (a network reply, a bus grant). The
    /// answer may be conservative — an earlier cycle than strictly needed
    /// only suppresses fast-forwarding, never changes behaviour — but must
    /// never be later than the first cycle at which [`CeEngine::tick`]
    /// would do anything beyond its fixed stall-attribution increments.
    pub(crate) fn next_event(
        &self,
        now: Cycle,
        ccbus: &CcBus,
        counters: &[CounterDef],
    ) -> Option<Cycle> {
        let soon = now + 1;
        if self.pending_pkt.is_some() {
            return Some(soon); // retries injection every cycle
        }
        let fault_ev = self.fault_ctl.as_deref().and_then(|c| c.next_event(now));
        if matches!(self.state, CeState::Done) {
            // Only idle cycles remain — except retries still draining.
            return fault_ev;
        }
        let pfu_ev = self.pfu.next_event(now);
        if pfu_ev == Some(soon) {
            return pfu_ev;
        }
        if now < self.vm_stall_until {
            return min_event(fault_ev, min_event(pfu_ev, Some(self.vm_stall_until)));
        }
        let state_ev = match &self.state {
            CeState::Done => None,
            CeState::Fetch => Some(soon),
            CeState::Stall { until } => Some((*until).max(soon)),
            CeState::VectorDirect {
                length,
                issued,
                start_at,
                ..
            } => {
                let drain = self.direct_ready.front().map(|&at| at.max(soon));
                let issue = (*issued < *length
                    && self.outstanding_reads < self.cfg.max_outstanding_global)
                    .then(|| (*start_at).max(soon));
                min_event(drain, issue)
            }
            CeState::VectorPref {
                length,
                consumed,
                start_at,
            } => {
                if now < *start_at {
                    Some((*start_at).max(soon))
                } else if *consumed >= *length || self.pfu.can_consume() {
                    Some(soon)
                } else {
                    None // waiting for prefetched words to return
                }
            }
            CeState::VectorGWrite {
                length,
                issued,
                start_at,
                ..
            } => {
                if *issued >= *length {
                    Some(soon)
                } else {
                    Some((*start_at).max(soon))
                }
            }
            CeState::VectorCache {
                write,
                length,
                issued,
                last_ready,
                ..
            } => {
                if *issued < *length {
                    Some(soon) // contends for cache banks every cycle
                } else if !*write && now < *last_ready {
                    Some((*last_ready).max(soon))
                } else {
                    Some(soon)
                }
            }
            CeState::AwaitScalarRead => self.scalar_ready.map(|at| at.max(soon)),
            CeState::AwaitSync => self.sync_result.is_some().then_some(soon),
            CeState::AwaitCounter => self.await_counter_event(soon, ccbus, counters),
            CeState::AwaitClusterBarrier => ccbus.peek_release(self.ce_in_cluster).then_some(soon),
            CeState::GlobalBarrier { phase, .. } => match phase {
                GbPhase::PollWait { at } => Some((*at).max(soon)),
                GbPhase::AwaitArrive | GbPhase::AwaitPoll => {
                    self.sync_result.is_some().then_some(soon)
                }
            },
            CeState::AwaitFence => (self.outstanding_writes == 0).then_some(soon),
        };
        min_event(fault_ev, min_event(pfu_ev, state_ev))
    }

    /// `next_event` for the [`CeState::AwaitCounter`] wait, which resolves
    /// differently per counter kind.
    fn await_counter_event(
        &self,
        soon: Cycle,
        ccbus: &CcBus,
        counters: &[CounterDef],
    ) -> Option<Cycle> {
        let FrameKind::SelfSched { counter, epoch, .. } = self.cur_kind() else {
            unreachable!("AwaitCounter without a SelfSched frame");
        };
        match counters[counter] {
            CounterDef::Cluster { .. } => ccbus.peek_grant(self.ce_in_cluster).then_some(soon),
            CounterDef::Global { .. } => self.sync_result.is_some().then_some(soon),
            CounterDef::GlobalShared { .. } => {
                if self.sdoall_awaiting_reply {
                    self.sync_result.is_some().then_some(soon)
                } else if self.sdoall_must_fetch
                    || ccbus.sdoall_can_take(self.ce_in_cluster, counter, epoch)
                {
                    // Will issue the elected fetch, or take a posted value.
                    Some(soon)
                } else {
                    None // another CE's fetch is in flight
                }
            }
        }
    }

    /// Credit `cycles` skipped quiescent cycles with exactly the counter
    /// increments the per-cycle [`CeEngine::tick`] would have made. Only
    /// valid over a span `next_event` declared event-free: every skipped
    /// tick is a no-op except for one stall/idle/busy attribution, decided
    /// by the (unchanging) state the same way the tick's fallthrough does.
    pub(crate) fn skip(&mut self, now: Cycle, cycles: u64) {
        debug_assert!(self.pending_pkt.is_none(), "skipped CE holds a packet");
        if matches!(self.state, CeState::Done) {
            self.stats.idle += cycles;
            return;
        }
        self.pfu.skip(cycles);
        if now < self.vm_stall_until {
            self.stats.stall_mem += cycles;
            return;
        }
        match self.state {
            CeState::VectorDirect { .. }
            | CeState::VectorPref { .. }
            | CeState::VectorCache { .. }
            | CeState::VectorGWrite { .. }
            | CeState::AwaitScalarRead
            | CeState::Fetch => self.stats.stall_mem += cycles,
            CeState::AwaitCounter
            | CeState::AwaitClusterBarrier
            | CeState::GlobalBarrier { .. }
            | CeState::AwaitSync
            | CeState::AwaitFence => self.stats.stall_sync += cycles,
            // Timed execution stalls model compute latency: busy.
            _ => self.stats.busy += cycles,
        }
    }

    /// Advance one cycle.
    pub fn tick(&mut self, now: Cycle, ctx: &mut CeContext<'_>) {
        // Flush a request that failed injection last cycle (even when the
        // program has finished — the final store must still drain).
        if let Some(pkt) = self.pending_pkt.take() {
            if !ctx.forward.try_inject(self.id.port().0, pkt) {
                self.pending_pkt = Some(pkt);
            }
        }
        // Advance the retry controller (even after Done — the last store
        // or sync may still be draining through retries). At most one
        // resend per cycle, and only when the pending latch is free.
        if self.pending_pkt.is_none() {
            if let Some(ctl) = self.fault_ctl.as_deref_mut() {
                match ctl.poll(now) {
                    CtlPoll::Idle | CtlPoll::Exhausted => {}
                    CtlPoll::Resend(pkt) => {
                        if !ctx.forward.try_inject(self.id.port().0, pkt) {
                            self.pending_pkt = Some(pkt);
                        }
                    }
                }
            }
        }
        if matches!(self.state, CeState::Done) {
            self.stats.idle += 1;
            if self.flat.is_some() && self.pending_pkt.is_none() && self.fault_ctl.is_none() {
                // Nothing left to drain: every remaining tick is idle.
                self.quiet_until = Cycle(u64::MAX);
            }
            return;
        }
        // The PFU shares the CE's network port (skip the call — it goes
        // through a `dyn` parameter, so it never inlines — when idle).
        if !self.pfu.issue_idle() {
            self.pfu.tick(now, self.id.port().0, ctx.forward);
        }

        if now < self.vm_stall_until {
            self.stats.stall_mem += 1;
            return;
        }

        let mut progressed = false;
        let flat = self.flat.is_some();
        for _ in 0..16 {
            let s = if flat {
                self.step_lowered(now, ctx)
            } else {
                self.step(now, ctx)
            };
            match s {
                Step::Progress => progressed = true,
                Step::Blocked => break,
            }
        }
        if !progressed {
            match self.state {
                CeState::VectorDirect { .. }
                | CeState::VectorPref { .. }
                | CeState::VectorCache { .. }
                | CeState::VectorGWrite { .. }
                | CeState::AwaitScalarRead
                | CeState::Fetch => self.stats.stall_mem += 1,
                CeState::AwaitCounter
                | CeState::AwaitClusterBarrier
                | CeState::GlobalBarrier { .. }
                | CeState::AwaitSync
                | CeState::AwaitFence => self.stats.stall_sync += 1,
                // Timed execution stalls model compute latency: busy.
                _ => self.stats.busy += 1,
            }
        } else {
            self.stats.busy += 1;
        }
        if self.is_done() && self.stats.done_at == 0 {
            self.stats.done_at = now.0;
        }
        if self.flat.is_some() {
            self.note_quiet(now, ctx.counters);
        }
    }

    /// Lowered-mode quick tick: strictly before the quiescent horizon a
    /// full [`CeEngine::tick`] provably reduces to one attribution
    /// increment — the engine is parked in a wait that nothing but a
    /// reply delivery or a known future cycle can end, with no pending
    /// packet, no retry controller and an idle prefetch issue unit, so
    /// the packet flush, retry poll, PFU tick and step loop are all
    /// no-ops. Performs that increment (the same stall/idle/busy class
    /// the full tick's fallthrough would pick) and returns `true`;
    /// returns `false` when a full tick is required. Never engaged for
    /// the interpreter (the horizon stays at zero).
    #[inline]
    pub(crate) fn try_quick_tick(&mut self, now: Cycle, ccbus: &CcBus) -> bool {
        if now >= self.quiet_until {
            return false;
        }
        // CC-bus waits end on *pulled* state, so their horizon is
        // open-ended; the quick tick peeks (non-consuming) and falls
        // back to a full tick the cycle a release or grant becomes
        // visible — the same cycle the polling stepper would consume
        // it. A grant/release can only be posted for a CE that asked,
        // so the peeks are trivially false in every other wait.
        match self.state {
            CeState::AwaitClusterBarrier if ccbus.peek_release(self.ce_in_cluster) => {
                return false;
            }
            CeState::AwaitCounter if ccbus.peek_grant(self.ce_in_cluster) => {
                return false;
            }
            _ => {}
        }
        match self.state {
            CeState::Done => self.stats.idle += 1,
            CeState::VectorDirect { .. }
            | CeState::VectorPref { .. }
            | CeState::VectorCache { .. }
            | CeState::VectorGWrite { .. }
            | CeState::AwaitScalarRead
            | CeState::Fetch => self.stats.stall_mem += 1,
            CeState::AwaitCounter
            | CeState::AwaitClusterBarrier
            | CeState::GlobalBarrier { .. }
            | CeState::AwaitSync
            | CeState::AwaitFence => self.stats.stall_sync += 1,
            // Timed execution stalls model compute latency: busy.
            _ => self.stats.busy += 1,
        }
        true
    }

    /// Recompute the quiescent horizon after a full lowered-mode tick.
    ///
    /// A horizon is only legal for a wait that exactly two things can
    /// end: reaching a cycle already known (a fused stall's deadline, a
    /// scheduled completion), or a reply delivery — which always lands
    /// through [`CeEngine::receive`], where the horizon is dropped.
    /// Waits resolved by *pulled* state fall in two classes. CC-bus
    /// grants and barrier releases are cheap to peek without consuming,
    /// so [`CeEngine::try_quick_tick`] checks them itself and the
    /// horizon may be open-ended. Posted self-scheduling values and
    /// fetch elections have no such peek: those must keep ticking.
    /// `Cycle::MAX` therefore means "quiet until a reply arrives or a
    /// peeked bus flag flips".
    fn note_quiet(&mut self, now: Cycle, counters: &[CounterDef]) {
        self.quiet_until = Cycle::ZERO;
        if self.pending_pkt.is_some() || self.fault_ctl.is_some() || !self.pfu.issue_idle() {
            return;
        }
        let soon = now + 1;
        self.quiet_until = match self.state {
            CeState::Stall { until } if until > soon => until,
            CeState::Done => Cycle(u64::MAX),
            CeState::VectorCache {
                write,
                length,
                issued,
                last_ready,
                start_at,
                ..
            } => {
                if issued < length && start_at > soon {
                    start_at // startup ramp: no access before `start_at`
                } else if issued >= length && !write && last_ready > soon {
                    // All elements issued: quiet until the last fill.
                    last_ready
                } else {
                    Cycle::ZERO
                }
            }
            CeState::VectorGWrite { start_at, .. } if start_at > soon => start_at,
            // Consumed every word the prefetch unit holds; the next one
            // arrives through `receive` (or the startup ramp ends).
            CeState::VectorPref { start_at, .. } => {
                if now < start_at {
                    start_at
                } else if !self.pfu.can_consume() {
                    Cycle(u64::MAX)
                } else {
                    Cycle::ZERO
                }
            }
            CeState::VectorDirect {
                length,
                issued,
                start_at,
                ..
            } => {
                // The next completion matures off the ready queue; more
                // issues need a free miss slot (freed by that same
                // queue) or the startup ramp. New replies clear the
                // horizon in `receive`.
                let drain = self.direct_ready.front().map_or(Cycle(u64::MAX), |&at| at);
                let issue = if issued < length
                    && self.outstanding_reads < self.cfg.max_outstanding_global
                {
                    start_at
                } else {
                    Cycle(u64::MAX)
                };
                let ev = drain.min(issue);
                if ev > soon {
                    ev
                } else {
                    Cycle::ZERO
                }
            }
            CeState::AwaitScalarRead => match self.scalar_ready {
                Some(at) if at > soon => at,
                Some(_) => Cycle::ZERO,
                None => Cycle(u64::MAX),
            },
            CeState::AwaitSync if self.sync_result.is_none() => Cycle(u64::MAX),
            CeState::AwaitFence if self.outstanding_writes > 0 => Cycle(u64::MAX),
            // Pulled waits: the quick tick itself peeks the CC bus and
            // falls back to a full tick the cycle a release or grant
            // appears — the same cycle the polling stepper would see it.
            CeState::AwaitClusterBarrier => Cycle(u64::MAX),
            CeState::AwaitCounter => {
                let FrameKind::SelfSched { counter, .. } = self.cur_kind() else {
                    unreachable!("AwaitCounter without a SelfSched frame");
                };
                match counters[counter] {
                    // Grant is pulled: peeked by the quick tick.
                    CounterDef::Cluster { .. } => Cycle(u64::MAX),
                    // Fetch already in flight: resolved by a reply.
                    CounterDef::Global { .. } if self.sync_result.is_none() => Cycle(u64::MAX),
                    CounterDef::GlobalShared { .. }
                        if self.sdoall_awaiting_reply && self.sync_result.is_none() =>
                    {
                        Cycle(u64::MAX)
                    }
                    // Posted values / elections are pulled state with no
                    // peek in the quick tick: keep ticking.
                    _ => Cycle::ZERO,
                }
            }
            CeState::GlobalBarrier { phase, .. } => match phase {
                GbPhase::PollWait { at } if at > soon => at,
                GbPhase::AwaitArrive | GbPhase::AwaitPoll if self.sync_result.is_none() => {
                    Cycle(u64::MAX)
                }
                _ => Cycle::ZERO,
            },
            _ => Cycle::ZERO,
        };
    }

    /// One step of lowered execution: the hot vector states mutate in
    /// place (no state-enum copy out and rebuild per element — at one
    /// element per tick the round-trip is real overhead), everything
    /// else falls through to the shared [`CeEngine::step`]. Semantics
    /// are identical to the interpreter's steppers line for line; the
    /// `vm_check` each stepper would make is skipped because lowering
    /// is never enabled together with the vm model.
    fn step_lowered(&mut self, now: Cycle, ctx: &mut CeContext<'_>) -> Step {
        debug_assert!(!self.vm_enabled, "lowered mode implies vm off");
        match &mut self.state {
            CeState::Stall { until } => {
                if now >= *until {
                    self.state = CeState::Fetch;
                    Step::Progress
                } else {
                    Step::Blocked
                }
            }
            CeState::VectorCache {
                base,
                stride,
                write,
                length,
                issued,
                last_ready,
                start_at,
            } => {
                let (write, length) = (*write, *length);
                if *issued >= length && (write || now >= *last_ready) {
                    self.state = CeState::Fetch;
                    return Step::Progress;
                }
                if now >= *start_at && *issued < length {
                    let a = (*base as i64 + i64::from(*issued) * *stride) as u64;
                    let acc = ctx.cache.access(now, self.ce_in_cluster, a, write);
                    match acc {
                        CacheAccess::Ready { at } | CacheAccess::Pending { at } => {
                            // Accepted cache accesses are sampling
                            // candidates like network requests; the
                            // completion stamp carries the
                            // (deterministic) future ready cycle.
                            if let Some(tc) = self.trace_ctl.as_deref_mut() {
                                let id = tc.sample_mem();
                                if id != 0 {
                                    let fill = matches!(acc, CacheAccess::Pending { .. });
                                    tc.stamp(id, hop::ISSUE, class::CACHE, now);
                                    tc.stamp(id, hop::CACHE_DONE, u8::from(fill), at);
                                }
                            }
                            if !write && at > *last_ready {
                                *last_ready = at;
                            }
                            *issued += 1;
                            self.stats.vector_elements += 1;
                        }
                        CacheAccess::Stall => {}
                    }
                    if *issued >= length && write {
                        self.state = CeState::Fetch;
                        return Step::Progress;
                    }
                }
                Step::Blocked
            }
            CeState::VectorPref {
                length,
                consumed,
                start_at,
            } => {
                if now < *start_at {
                    return Step::Blocked;
                }
                if *consumed >= *length {
                    self.state = CeState::Fetch;
                    return Step::Progress;
                }
                if self.pfu.try_consume() {
                    self.stats.vector_elements += 1;
                    *consumed += 1;
                    if *consumed >= *length {
                        self.state = CeState::Fetch;
                        return Step::Progress;
                    }
                }
                Step::Blocked
            }
            _ => self.step(now, ctx),
        }
    }

    fn step(&mut self, now: Cycle, ctx: &mut CeContext<'_>) -> Step {
        match self.state {
            CeState::Done => Step::Blocked,
            CeState::Fetch => self.fetch(now, ctx),
            CeState::Stall { until } => {
                if now >= until {
                    self.state = CeState::Fetch;
                    Step::Progress
                } else {
                    Step::Blocked
                }
            }
            CeState::VectorDirect {
                base,
                stride,
                length,
                issued,
                completed,
                start_at,
                gather,
            } => self.step_vector_direct(
                now, ctx, base, stride, length, issued, completed, start_at, gather,
            ),
            CeState::VectorPref {
                length,
                consumed,
                start_at,
            } => {
                if now < start_at {
                    return Step::Blocked;
                }
                if consumed >= length {
                    self.state = CeState::Fetch;
                    return Step::Progress;
                }
                if self.pfu.try_consume() {
                    self.stats.vector_elements += 1;
                    let consumed = consumed + 1;
                    self.state = if consumed >= length {
                        CeState::Fetch
                    } else {
                        CeState::VectorPref {
                            length,
                            consumed,
                            start_at,
                        }
                    };
                    if consumed >= length {
                        return Step::Progress;
                    }
                }
                Step::Blocked
            }
            CeState::VectorGWrite {
                base,
                stride,
                length,
                issued,
                start_at,
                scatter,
            } => self.step_vector_gwrite(now, ctx, base, stride, length, issued, start_at, scatter),
            CeState::VectorCache {
                base,
                stride,
                write,
                length,
                issued,
                last_ready,
                start_at,
            } => self.step_vector_cache(
                now, ctx, base, stride, write, length, issued, last_ready, start_at,
            ),
            CeState::AwaitScalarRead => {
                if let Some(at) = self.scalar_ready {
                    if now >= at {
                        self.scalar_ready = None;
                        self.outstanding_reads = self.outstanding_reads.saturating_sub(1);
                        self.state = CeState::Fetch;
                        return Step::Progress;
                    }
                }
                Step::Blocked
            }
            CeState::AwaitSync => {
                if self.sync_result.take().is_some() {
                    self.state = CeState::Fetch;
                    Step::Progress
                } else {
                    Step::Blocked
                }
            }
            CeState::AwaitCounter => self.step_await_counter(now, ctx),
            CeState::AwaitClusterBarrier => {
                if let Some(at) = ctx.ccbus.take_release(self.ce_in_cluster) {
                    self.trace_barrier_release(now);
                    self.state = CeState::Stall { until: at };
                    Step::Progress
                } else {
                    Step::Blocked
                }
            }
            CeState::GlobalBarrier {
                barrier,
                epoch,
                phase,
                misses,
            } => self.step_global_barrier(now, ctx, barrier, epoch, phase, misses),
            CeState::AwaitFence => {
                if self.outstanding_writes == 0 {
                    self.state = CeState::Fetch;
                    Step::Progress
                } else {
                    Step::Blocked
                }
            }
        }
    }

    // ---- fetch / dispatch -------------------------------------------------

    fn fetch(&mut self, now: Cycle, ctx: &mut CeContext<'_>) -> Step {
        if self.flat.is_some() {
            return self.fetch_flat(now, ctx);
        }
        let frame = self.frames.last_mut().expect("engine always has a frame");
        if frame.pc >= frame.block.len() {
            return self.end_of_block(now, ctx);
        }
        // Borrow the op through a refcount bump of the block (no per-op
        // deep clone: `Op` can own address expressions and nested blocks).
        let pc = frame.pc;
        let block = Arc::clone(&frame.block);
        self.dispatch(now, ctx, &block[pc])
    }

    /// Fetch and dispatch from the compiled micro-op stream. Mirrors
    /// [`CeEngine::dispatch`] exactly — the same blocking conditions, the
    /// same packets and state transitions on the same cycles — with
    /// control flow resolved through flat indices instead of the frame
    /// tree, and fused timed runs charged as a single stall.
    fn fetch_flat(&mut self, now: Cycle, ctx: &mut CeContext<'_>) -> Step {
        let flat = self.flat.as_ref().expect("flat fetch without FlatCtl");
        let Some(&uop) = flat.prog.uops().get(flat.pc as usize) else {
            // Past the end of the root stream: program complete (loop
            // frames always branch back before their end markers).
            self.state = CeState::Done;
            return Step::Progress;
        };
        match uop {
            UOp::TimedRun {
                cycles,
                flops,
                elements,
            } => {
                self.advance_pc();
                self.stats.flops += flops;
                self.stats.vector_elements += elements;
                self.state = CeState::Stall {
                    until: now + cycles,
                };
                Step::Progress
            }
            UOp::ScalarGlobalRead { addr } => {
                if self.pending_pkt.is_some() {
                    return Step::Blocked;
                }
                let a = self.flat_addr(addr);
                if self.vm_check(now, ctx, a) {
                    return Step::Blocked;
                }
                self.advance_pc();
                self.outstanding_reads += 1;
                let pkt = Packet::read_request(
                    module_of(a, self.modules).0,
                    MemRequest {
                        ce: self.id,
                        kind: RequestKind::Read,
                        addr: a,
                        stream: Stream::Scalar,
                        issued: now,
                        seq: 0,
                        nacked: false,
                        trace: 0,
                    },
                );
                self.queue_pkt(now, ctx, pkt);
                self.state = CeState::AwaitScalarRead;
                Step::Progress
            }
            UOp::ScalarGlobalWrite { addr } => {
                if self.pending_pkt.is_some() {
                    return Step::Blocked;
                }
                let a = self.flat_addr(addr);
                if self.vm_check(now, ctx, a) {
                    return Step::Blocked;
                }
                self.advance_pc();
                self.outstanding_writes += 1;
                let pkt = Packet::write_request(
                    module_of(a, self.modules).0,
                    MemRequest {
                        ce: self.id,
                        kind: RequestKind::Write,
                        addr: a,
                        stream: Stream::WriteAck,
                        issued: now,
                        seq: 0,
                        nacked: false,
                        trace: 0,
                    },
                );
                self.queue_pkt(now, ctx, pkt);
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
            UOp::VecPref { length, flops } => {
                self.advance_pc();
                self.stats.flops += flops;
                self.state = CeState::VectorPref {
                    length,
                    consumed: 0,
                    start_at: now + u64::from(self.cfg.vector_startup),
                };
                Step::Progress
            }
            UOp::VecDirect {
                addr,
                stride,
                length,
                flops,
                gather,
            } => {
                self.advance_pc();
                self.stats.flops += flops;
                self.state = CeState::VectorDirect {
                    base: self.flat_addr(addr),
                    stride,
                    length,
                    issued: 0,
                    completed: 0,
                    start_at: now + u64::from(self.cfg.vector_startup),
                    gather,
                };
                Step::Progress
            }
            UOp::VecGWrite {
                addr,
                stride,
                length,
                flops,
                scatter,
            } => {
                self.advance_pc();
                self.stats.flops += flops;
                self.state = CeState::VectorGWrite {
                    base: self.flat_addr(addr),
                    stride,
                    length,
                    issued: 0,
                    start_at: now + u64::from(self.cfg.vector_startup),
                    scatter,
                };
                Step::Progress
            }
            UOp::VecCache {
                addr,
                stride,
                length,
                flops,
                write,
            } => {
                self.advance_pc();
                self.stats.flops += flops;
                let start_at = now + u64::from(self.cfg.vector_startup);
                self.state = CeState::VectorCache {
                    base: self.flat_addr(addr),
                    stride,
                    write,
                    length,
                    issued: 0,
                    last_ready: start_at,
                    start_at,
                };
                Step::Progress
            }
            UOp::PrefetchArm { length, stride } => {
                self.advance_pc();
                self.pfu.arm(length, stride);
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
            UOp::PrefetchFire { base } => {
                let a = self.flat_addr(base);
                if self.vm_check(now, ctx, a) {
                    return Step::Blocked;
                }
                self.advance_pc();
                self.pfu.fire(now, a);
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
            UOp::ArmFire {
                length,
                stride,
                base,
            } => {
                if !self.flat.as_ref().expect("flat").fire_pending {
                    // Arm phase: the fused slot re-executes for the fire.
                    self.pfu.arm(length, stride);
                    self.flat.as_mut().expect("flat").fire_pending = true;
                    self.state = CeState::Stall { until: now + 1 };
                    return Step::Progress;
                }
                let a = self.flat_addr(base);
                if self.vm_check(now, ctx, a) {
                    return Step::Blocked;
                }
                let flat = self.flat.as_mut().expect("flat");
                flat.fire_pending = false;
                flat.pc += 1;
                self.pfu.fire(now, a);
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
            UOp::PrefetchRewind => {
                self.advance_pc();
                self.pfu.rewind();
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
            UOp::EnterRepeat { count, end } => {
                let flat = self.flat.as_mut().expect("flat");
                if count == 0 {
                    flat.pc = end + 1;
                    return Step::Progress;
                }
                let head = flat.pc + 1;
                flat.frames.push(LFrame {
                    head,
                    end,
                    kind: FrameKind::Repeat { remaining: count },
                });
                flat.pc = head;
                self.indices.push(0);
                Step::Progress
            }
            UOp::LoopEnd => {
                let flat = self.flat.as_mut().expect("flat");
                let fr = flat.frames.last_mut().expect("flat loop frame");
                let FrameKind::Repeat { remaining } = &mut fr.kind else {
                    unreachable!("LoopEnd on non-repeat frame");
                };
                *remaining -= 1;
                let again = *remaining > 0;
                let target = if again { fr.head } else { fr.end + 1 };
                flat.pc = target;
                if again {
                    *self.indices.last_mut().expect("loop index") += 1;
                } else {
                    flat.frames.pop();
                    self.indices.pop();
                }
                Step::Progress
            }
            UOp::EnterSelfSched {
                counter,
                limit,
                chunk,
                dispatch_cost,
                end,
            } => {
                if limit == 0 {
                    self.flat.as_mut().expect("flat").pc = end + 1;
                    return Step::Progress;
                }
                let epoch = self.next_epoch(counter as usize);
                let flat = self.flat.as_mut().expect("flat");
                let head = flat.pc + 1;
                flat.frames.push(LFrame {
                    head,
                    end,
                    kind: FrameKind::SelfSched {
                        counter: counter as usize,
                        limit,
                        chunk,
                        dispatch_cost,
                        epoch,
                        chunk_end: 0,
                    },
                });
                flat.pc = head;
                self.indices.push(0);
                self.request_chunk(now, ctx)
            }
            UOp::SelfSchedEnd => {
                let flat = self.flat.as_ref().expect("flat");
                let fr = flat.frames.last().expect("flat loop frame");
                let FrameKind::SelfSched { chunk_end, .. } = fr.kind else {
                    unreachable!("SelfSchedEnd on non-selfsched frame");
                };
                let head = fr.head;
                let cur = *self.indices.last().expect("loop index");
                if cur + 1 < chunk_end {
                    self.flat.as_mut().expect("flat").pc = head;
                    *self.indices.last_mut().expect("loop index") += 1;
                    Step::Progress
                } else {
                    self.request_chunk(now, ctx)
                }
            }
            UOp::Barrier { barrier } => self.dispatch_barrier(now, ctx, barrier as usize),
            UOp::SyncOp { addr, instr } => {
                if self.pending_pkt.is_some() {
                    return Step::Blocked;
                }
                self.advance_pc();
                let a = self.flat_addr(addr);
                self.send_sync(now, ctx, a, instr);
                self.state = CeState::AwaitSync;
                Step::Progress
            }
            UOp::Fence => {
                self.advance_pc();
                self.state = CeState::AwaitFence;
                Step::Progress
            }
            UOp::PostEvent { tag } => {
                self.advance_pc();
                // Tag layout: caller tag in the high bits, CE id low.
                ctx.tracer.post(now, (tag << 8) | self.id.0 as u32);
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
        }
    }

    fn end_of_block(&mut self, now: Cycle, ctx: &mut CeContext<'_>) -> Step {
        let frame = self.frames.last_mut().expect("frame");
        match &mut frame.kind {
            FrameKind::Root => {
                self.state = CeState::Done;
                Step::Progress
            }
            FrameKind::Repeat { remaining } => {
                *remaining -= 1;
                if *remaining > 0 {
                    frame.pc = 0;
                    *self.indices.last_mut().expect("loop index") += 1;
                } else {
                    self.frames.pop();
                    self.indices.pop();
                }
                Step::Progress
            }
            FrameKind::SelfSched { chunk_end, .. } => {
                let cur = *self.indices.last().expect("loop index");
                if cur + 1 < *chunk_end {
                    frame.pc = 0;
                    *self.indices.last_mut().expect("loop index") += 1;
                    Step::Progress
                } else {
                    self.request_chunk(now, ctx)
                }
            }
        }
    }

    /// Issue the next-chunk request for the top (SelfSched) frame.
    fn request_chunk(&mut self, now: Cycle, ctx: &mut CeContext<'_>) -> Step {
        let FrameKind::SelfSched {
            counter,
            limit,
            chunk,
            epoch,
            ..
        } = self.cur_kind()
        else {
            unreachable!("request_chunk on non-selfsched frame");
        };
        match ctx.counters[counter] {
            CounterDef::Cluster { slot, .. } => {
                ctx.ccbus
                    .request_counter(self.ce_in_cluster, slot, epoch, chunk, limit);
                self.state = CeState::AwaitCounter;
                Step::Progress
            }
            CounterDef::Global { base_addr } => {
                if self.pending_pkt.is_some() {
                    return Step::Blocked;
                }
                let addr = base_addr + epoch;
                let instr = SyncInstr {
                    test: Some((Rel::Lt, limit.min(i32::MAX as u64) as i32)),
                    op: SyncOpKind::Add(chunk as i32),
                };
                self.send_sync(now, ctx, addr, instr);
                self.state = CeState::AwaitCounter;
                Step::Progress
            }
            CounterDef::GlobalShared { .. } => {
                // The take/fetch/post protocol runs in AwaitCounter.
                self.state = CeState::AwaitCounter;
                Step::Progress
            }
        }
    }

    fn step_await_counter(&mut self, now: Cycle, ctx: &mut CeContext<'_>) -> Step {
        // Either a bus grant or a network sync reply resolves the wait.
        let frame_kind = self.cur_kind();
        let FrameKind::SelfSched {
            counter,
            limit,
            chunk,
            dispatch_cost,
            ..
        } = frame_kind
        else {
            unreachable!("AwaitCounter without a SelfSched frame");
        };
        let got: Option<u64> = match ctx.counters[counter] {
            CounterDef::Cluster { .. } => ctx.ccbus.take_grant(self.ce_in_cluster),
            CounterDef::Global { .. } => self.sync_result.take().map(|o| o.old as u64),
            CounterDef::GlobalShared { base_addr } => {
                let FrameKind::SelfSched { epoch, .. } = self.cur_kind() else {
                    unreachable!();
                };
                // 1. A fetch we own: post the reply to the cluster bus.
                if self.sdoall_awaiting_reply {
                    let Some(out) = self.sync_result.take() else {
                        return Step::Blocked;
                    };
                    self.sdoall_awaiting_reply = false;
                    ctx.ccbus.sdoall_post(counter, epoch, out.old as u64);
                }
                // 2. An election we owe a fetch for.
                if self.sdoall_must_fetch {
                    if self.pending_pkt.is_some() {
                        return Step::Blocked;
                    }
                    let addr = base_addr + epoch;
                    let instr = SyncInstr {
                        test: Some((Rel::Lt, limit.min(i32::MAX as u64) as i32)),
                        op: SyncOpKind::Add(chunk as i32),
                    };
                    self.send_sync(now, ctx, addr, instr);
                    self.sdoall_must_fetch = false;
                    self.sdoall_awaiting_reply = true;
                    return Step::Progress;
                }
                // 3. Take the cluster's next value (or get elected).
                match ctx.ccbus.sdoall_take(
                    self.ce_in_cluster,
                    counter,
                    epoch,
                    self.ces_per_cluster,
                ) {
                    crate::ccbus::SdoallTake::Ready(v) => Some(v),
                    crate::ccbus::SdoallTake::Fetch => {
                        self.sdoall_must_fetch = true;
                        return Step::Progress;
                    }
                    crate::ccbus::SdoallTake::Wait => return Step::Blocked,
                }
            }
        };
        let Some(v) = got else {
            let _ = now;
            return Step::Blocked;
        };
        if v >= limit {
            self.loop_exit();
            self.state = CeState::Fetch;
            return Step::Progress;
        }
        let end = (v + u64::from(chunk)).min(limit);
        if let FrameKind::SelfSched { chunk_end, .. } = self.cur_kind_mut() {
            *chunk_end = end;
        }
        *self.indices.last_mut().expect("loop index") = v;
        self.loop_restart();
        self.state = if dispatch_cost > 0 {
            CeState::Stall {
                until: now + u64::from(dispatch_cost),
            }
        } else {
            CeState::Fetch
        };
        Step::Progress
    }

    fn dispatch(&mut self, now: Cycle, ctx: &mut CeContext<'_>, op: &Op) -> Step {
        match op {
            Op::ScalarWork { cycles } => {
                self.advance_pc();
                self.state = CeState::Stall {
                    until: now + u64::from((*cycles).max(1)),
                };
                Step::Progress
            }
            Op::ScalarFlops {
                flops,
                cycles_per_flop,
            } => {
                self.advance_pc();
                self.stats.flops += u64::from(*flops);
                self.state = CeState::Stall {
                    until: now + u64::from(*flops) * u64::from((*cycles_per_flop).max(1)),
                };
                Step::Progress
            }
            Op::ScalarGlobalRead { addr } => {
                if self.pending_pkt.is_some() {
                    return Step::Blocked;
                }
                let a = addr.eval(&self.indices);
                if self.vm_check(now, ctx, a) {
                    return Step::Blocked;
                }
                self.advance_pc();
                self.outstanding_reads += 1;
                let pkt = Packet::read_request(
                    module_of(a, self.modules).0,
                    MemRequest {
                        ce: self.id,
                        kind: RequestKind::Read,
                        addr: a,
                        stream: Stream::Scalar,
                        issued: now,
                        seq: 0,
                        nacked: false,
                        trace: 0,
                    },
                );
                self.queue_pkt(now, ctx, pkt);
                self.state = CeState::AwaitScalarRead;
                Step::Progress
            }
            Op::ScalarGlobalWrite { addr } => {
                if self.pending_pkt.is_some() {
                    return Step::Blocked;
                }
                let a = addr.eval(&self.indices);
                if self.vm_check(now, ctx, a) {
                    return Step::Blocked;
                }
                self.advance_pc();
                self.outstanding_writes += 1;
                let pkt = Packet::write_request(
                    module_of(a, self.modules).0,
                    MemRequest {
                        ce: self.id,
                        kind: RequestKind::Write,
                        addr: a,
                        stream: Stream::WriteAck,
                        issued: now,
                        seq: 0,
                        nacked: false,
                        trace: 0,
                    },
                );
                self.queue_pkt(now, ctx, pkt);
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
            Op::Vector(v) => self.dispatch_vector(now, v),
            Op::PrefetchArm { length, stride } => {
                self.advance_pc();
                self.pfu.arm(*length, *stride);
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
            Op::PrefetchFire { base } => {
                let a = base.eval(&self.indices);
                if self.vm_check(now, ctx, a) {
                    return Step::Blocked;
                }
                self.advance_pc();
                self.pfu.fire(now, a);
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
            Op::PrefetchRewind => {
                self.advance_pc();
                self.pfu.rewind();
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
            Op::Repeat { count, body } => {
                self.advance_pc();
                if *count == 0 {
                    return Step::Progress;
                }
                self.frames.push(Frame {
                    block: Arc::clone(body),
                    pc: 0,
                    kind: FrameKind::Repeat { remaining: *count },
                });
                self.indices.push(0);
                Step::Progress
            }
            Op::SelfSchedLoop {
                counter,
                limit,
                chunk,
                dispatch_cost,
                body,
            } => {
                self.advance_pc();
                if *limit == 0 {
                    return Step::Progress;
                }
                let epoch = self.next_epoch(counter.0);
                self.frames.push(Frame {
                    block: Arc::clone(body),
                    pc: 0,
                    kind: FrameKind::SelfSched {
                        counter: counter.0,
                        limit: *limit,
                        chunk: *chunk,
                        dispatch_cost: *dispatch_cost,
                        epoch,
                        chunk_end: 0,
                    },
                });
                self.indices.push(0);
                self.request_chunk(now, ctx)
            }
            Op::Barrier { barrier } => self.dispatch_barrier(now, ctx, barrier.0),
            Op::SyncOp { addr, instr } => {
                if self.pending_pkt.is_some() {
                    return Step::Blocked;
                }
                self.advance_pc();
                let a = addr.eval(&self.indices);
                self.send_sync(now, ctx, a, *instr);
                self.state = CeState::AwaitSync;
                Step::Progress
            }
            Op::Fence => {
                self.advance_pc();
                self.state = CeState::AwaitFence;
                Step::Progress
            }
            Op::PostEvent { tag } => {
                self.advance_pc();
                // Tag layout: caller tag in the high bits, CE id low.
                ctx.tracer.post(now, (*tag << 8) | self.id.0 as u32);
                self.state = CeState::Stall { until: now + 1 };
                Step::Progress
            }
        }
    }

    fn dispatch_vector(&mut self, now: Cycle, v: &VectorOp) -> Step {
        self.advance_pc();
        let start_at = now + u64::from(self.cfg.vector_startup);
        self.stats.flops += u64::from(v.flops_per_element) * u64::from(v.length);
        match &v.operand {
            MemOperand::None => {
                self.stats.vector_elements += u64::from(v.length);
                self.state = CeState::Stall {
                    until: start_at + u64::from(v.length),
                };
            }
            MemOperand::Prefetched => {
                self.state = CeState::VectorPref {
                    length: v.length,
                    consumed: 0,
                    start_at,
                };
            }
            MemOperand::GlobalRead { addr, stride } => {
                self.state = CeState::VectorDirect {
                    base: addr.eval(&self.indices),
                    stride: *stride,
                    length: v.length,
                    issued: 0,
                    completed: 0,
                    start_at,
                    gather: false,
                };
            }
            MemOperand::GlobalGather { addr } => {
                self.state = CeState::VectorDirect {
                    base: addr.eval(&self.indices),
                    stride: 1,
                    length: v.length,
                    issued: 0,
                    completed: 0,
                    start_at,
                    gather: true,
                };
            }
            MemOperand::GlobalWrite { addr, stride } => {
                self.state = CeState::VectorGWrite {
                    base: addr.eval(&self.indices),
                    stride: *stride,
                    length: v.length,
                    issued: 0,
                    start_at,
                    scatter: false,
                };
            }
            MemOperand::GlobalScatter { addr } => {
                self.state = CeState::VectorGWrite {
                    base: addr.eval(&self.indices),
                    stride: 1,
                    length: v.length,
                    issued: 0,
                    start_at,
                    scatter: true,
                };
            }
            MemOperand::ClusterRead { addr, stride } => {
                self.state = CeState::VectorCache {
                    base: addr.eval(&self.indices),
                    stride: *stride,
                    write: false,
                    length: v.length,
                    issued: 0,
                    last_ready: start_at,
                    start_at,
                };
            }
            MemOperand::ClusterWrite { addr, stride } => {
                self.state = CeState::VectorCache {
                    base: addr.eval(&self.indices),
                    stride: *stride,
                    write: true,
                    length: v.length,
                    issued: 0,
                    last_ready: start_at,
                    start_at,
                };
            }
        }
        Step::Progress
    }

    fn dispatch_barrier(&mut self, now: Cycle, ctx: &mut CeContext<'_>, barrier: usize) -> Step {
        let def = ctx.barriers[barrier];
        match def.scope {
            BarrierScope::Cluster(_) => {
                let epoch = self.next_barrier_use(barrier);
                self.advance_pc();
                self.trace_barrier_arrive(now, barrier, epoch);
                ctx.ccbus.arrive_barrier(
                    now,
                    self.ce_in_cluster,
                    def.base_addr as usize,
                    epoch,
                    def.expected,
                );
                self.state = CeState::AwaitClusterBarrier;
                Step::Progress
            }
            BarrierScope::Global => {
                if self.pending_pkt.is_some() {
                    return Step::Blocked;
                }
                let epoch = self.next_barrier_use(barrier);
                self.advance_pc();
                self.trace_barrier_arrive(now, barrier, epoch);
                let addr = def.base_addr + epoch;
                self.send_sync(now, ctx, addr, SyncInstr::fetch_add(1));
                self.state = CeState::GlobalBarrier {
                    barrier,
                    epoch,
                    phase: GbPhase::AwaitArrive,
                    misses: 0,
                };
                Step::Progress
            }
        }
    }

    fn step_global_barrier(
        &mut self,
        now: Cycle,
        ctx: &mut CeContext<'_>,
        barrier: usize,
        epoch: u64,
        phase: GbPhase,
        misses: u32,
    ) -> Step {
        let def = ctx.barriers[barrier];
        // Exponential backoff: early polls are prompt, long waits back off
        // so spinning CEs do not saturate the barrier's memory module.
        let backoff = |m: u32| -> u64 {
            let base = u64::from(self.cfg.barrier_poll_cycles);
            (base << m.min(7)).min(2048)
        };
        match phase {
            GbPhase::AwaitArrive => {
                let Some(out) = self.sync_result.take() else {
                    return Step::Blocked;
                };
                if out.old + 1 >= def.expected as i32 {
                    // Last arriver: barrier complete.
                    self.trace_barrier_release(now);
                    self.state = CeState::Stall { until: now + 1 };
                } else {
                    // Estimate remaining arrivals to start with a matched
                    // backoff: nearly-complete barriers poll promptly.
                    let missing = (def.expected as i32 - (out.old + 1)).max(1) as u32;
                    let start = if missing > 4 { 3 } else { 0 };
                    self.state = CeState::GlobalBarrier {
                        barrier,
                        epoch,
                        phase: GbPhase::PollWait {
                            at: now + backoff(start),
                        },
                        misses: start,
                    };
                }
                Step::Progress
            }
            GbPhase::PollWait { at } => {
                if now < at || self.pending_pkt.is_some() {
                    return Step::Blocked;
                }
                let addr = def.base_addr + epoch;
                self.send_sync(now, ctx, addr, SyncInstr::test_ge_read(def.expected as i32));
                self.state = CeState::GlobalBarrier {
                    barrier,
                    epoch,
                    phase: GbPhase::AwaitPoll,
                    misses,
                };
                Step::Progress
            }
            GbPhase::AwaitPoll => {
                let Some(out) = self.sync_result.take() else {
                    return Step::Blocked;
                };
                if out.passed {
                    self.trace_barrier_release(now);
                    self.state = CeState::Stall { until: now + 1 };
                } else {
                    self.state = CeState::GlobalBarrier {
                        barrier,
                        epoch,
                        phase: GbPhase::PollWait {
                            at: now + backoff(misses + 1),
                        },
                        misses: misses + 1,
                    };
                }
                Step::Progress
            }
        }
    }

    // ---- vector element stepping ------------------------------------------

    /// Pseudo-random element address for gather/scatter: deterministic
    /// hash of (base, element) spread over a 64K-word window.
    fn scatter_addr(base: u64, elem: u32) -> u64 {
        let h = (base ^ (u64::from(elem) << 17)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        base + (h >> 40) % 65_536
    }

    #[allow(clippy::too_many_arguments)]
    fn step_vector_direct(
        &mut self,
        now: Cycle,
        ctx: &mut CeContext<'_>,
        base: u64,
        stride: i64,
        length: u32,
        mut issued: u32,
        mut completed: u32,
        start_at: Cycle,
        gather: bool,
    ) -> Step {
        // Collect completions that have matured.
        while let Some(&at) = self.direct_ready.front() {
            if at <= now {
                self.direct_ready.pop_front();
                completed += 1;
                self.outstanding_reads = self.outstanding_reads.saturating_sub(1);
                self.stats.vector_elements += 1;
            } else {
                break;
            }
        }
        if completed >= length {
            self.state = CeState::Fetch;
            return Step::Progress;
        }
        if now >= start_at
            && issued < length
            && self.outstanding_reads < self.cfg.max_outstanding_global
            && self.pending_pkt.is_none()
        {
            let a = if gather {
                Self::scatter_addr(base, issued)
            } else {
                (base as i64 + i64::from(issued) * stride) as u64
            };
            if self.vm_check(now, ctx, a) {
                self.state = CeState::VectorDirect {
                    base,
                    stride,
                    length,
                    issued,
                    completed,
                    start_at,
                    gather,
                };
                return Step::Blocked;
            }
            self.outstanding_reads += 1;
            let pkt = Packet::read_request(
                module_of(a, self.modules).0,
                MemRequest {
                    ce: self.id,
                    kind: RequestKind::Read,
                    addr: a,
                    stream: Stream::Direct { elem: issued },
                    issued: now,
                    seq: 0,
                    nacked: false,
                    trace: 0,
                },
            );
            self.queue_pkt(now, ctx, pkt);
            issued += 1;
        }
        self.state = CeState::VectorDirect {
            base,
            stride,
            length,
            issued,
            completed,
            start_at,
            gather,
        };
        Step::Blocked
    }

    #[allow(clippy::too_many_arguments)]
    fn step_vector_gwrite(
        &mut self,
        now: Cycle,
        ctx: &mut CeContext<'_>,
        base: u64,
        stride: i64,
        length: u32,
        mut issued: u32,
        start_at: Cycle,
        scatter: bool,
    ) -> Step {
        if issued >= length {
            self.state = CeState::Fetch;
            return Step::Progress;
        }
        if now >= start_at && self.pending_pkt.is_none() {
            let a = if scatter {
                Self::scatter_addr(base, issued)
            } else {
                (base as i64 + i64::from(issued) * stride) as u64
            };
            if self.vm_check(now, ctx, a) {
                self.state = CeState::VectorGWrite {
                    base,
                    stride,
                    length,
                    issued,
                    start_at,
                    scatter,
                };
                return Step::Blocked;
            }
            self.outstanding_writes += 1;
            let pkt = Packet::write_request(
                module_of(a, self.modules).0,
                MemRequest {
                    ce: self.id,
                    kind: RequestKind::Write,
                    addr: a,
                    stream: Stream::WriteAck,
                    issued: now,
                    seq: 0,
                    nacked: false,
                    trace: 0,
                },
            );
            self.queue_pkt(now, ctx, pkt);
            issued += 1;
            self.stats.vector_elements += 1;
            if issued >= length {
                self.state = CeState::Fetch;
                return Step::Progress;
            }
        }
        self.state = CeState::VectorGWrite {
            base,
            stride,
            length,
            issued,
            start_at,
            scatter,
        };
        Step::Blocked
    }

    #[allow(clippy::too_many_arguments)]
    fn step_vector_cache(
        &mut self,
        now: Cycle,
        ctx: &mut CeContext<'_>,
        base: u64,
        stride: i64,
        write: bool,
        length: u32,
        mut issued: u32,
        mut last_ready: Cycle,
        start_at: Cycle,
    ) -> Step {
        if issued >= length && (write || now >= last_ready) {
            self.state = CeState::Fetch;
            return Step::Progress;
        }
        if now >= start_at && issued < length {
            let a = (base as i64 + i64::from(issued) * stride) as u64;
            if self.vm_check(now, ctx, a) {
                self.state = CeState::VectorCache {
                    base,
                    stride,
                    write,
                    length,
                    issued,
                    last_ready,
                    start_at,
                };
                return Step::Blocked;
            }
            let acc = ctx.cache.access(now, self.ce_in_cluster, a, write);
            match acc {
                CacheAccess::Ready { at } | CacheAccess::Pending { at } => {
                    // Accepted cache accesses are sampling candidates like
                    // network requests; the completion stamp carries the
                    // (deterministic) future ready cycle.
                    if let Some(tc) = self.trace_ctl.as_deref_mut() {
                        let id = tc.sample_mem();
                        if id != 0 {
                            let fill = matches!(acc, CacheAccess::Pending { .. });
                            tc.stamp(id, hop::ISSUE, class::CACHE, now);
                            tc.stamp(id, hop::CACHE_DONE, u8::from(fill), at);
                        }
                    }
                    if !write && at > last_ready {
                        last_ready = at;
                    }
                    issued += 1;
                    self.stats.vector_elements += 1;
                }
                CacheAccess::Stall => {}
            }
            if issued >= length && write {
                self.state = CeState::Fetch;
                return Step::Progress;
            }
        }
        self.state = CeState::VectorCache {
            base,
            stride,
            write,
            length,
            issued,
            last_ready,
            start_at,
        };
        Step::Blocked
    }

    // ---- helpers -----------------------------------------------------------

    fn advance_pc(&mut self) {
        match &mut self.flat {
            Some(f) => f.pc += 1,
            None => self.frames.last_mut().expect("frame").pc += 1,
        }
    }

    /// The innermost loop frame's kind — from the flat stack when running
    /// lowered, from the interpreter's frame tree otherwise.
    fn cur_kind(&self) -> FrameKind {
        match &self.flat {
            Some(f) => f.frames.last().expect("flat loop frame").kind,
            None => self.frames.last().expect("frame").kind,
        }
    }

    fn cur_kind_mut(&mut self) -> &mut FrameKind {
        match &mut self.flat {
            Some(f) => &mut f.frames.last_mut().expect("flat loop frame").kind,
            None => &mut self.frames.last_mut().expect("frame").kind,
        }
    }

    /// Leave the innermost loop: pop its frame and loop index and (flat)
    /// jump past the loop's end marker.
    fn loop_exit(&mut self) {
        match &mut self.flat {
            Some(f) => {
                let fr = f.frames.pop().expect("flat loop frame");
                f.pc = fr.end + 1;
            }
            None => {
                self.frames.pop();
            }
        }
        self.indices.pop();
    }

    /// Restart the innermost loop body (next self-scheduled chunk).
    fn loop_restart(&mut self) {
        match &mut self.flat {
            Some(f) => f.pc = f.frames.last().expect("flat loop frame").head,
            None => self.frames.last_mut().expect("frame").pc = 0,
        }
    }

    /// Evaluate an interned address expression under the loop indices.
    fn flat_addr(&self, idx: u32) -> u64 {
        self.flat
            .as_ref()
            .expect("flat addr without FlatCtl")
            .prog
            .addr(idx)
            .eval(&self.indices)
    }

    /// Take and advance the next epoch for `counter`.
    fn next_epoch(&mut self, counter: usize) -> u64 {
        if self.counter_epochs.len() <= counter {
            self.counter_epochs.resize(counter + 1, 0);
        }
        let e = self.counter_epochs[counter];
        self.counter_epochs[counter] += 1;
        e
    }

    /// Sample a barrier episode at arrival. A sampled episode's id is
    /// shared by every participating CE (it is derived from the barrier
    /// index and epoch alone) and is carried by the arrival/poll sync ops
    /// issued while the episode is open.
    fn trace_barrier_arrive(&mut self, now: Cycle, barrier: usize, epoch: u64) {
        if let Some(tc) = self.trace_ctl.as_deref_mut() {
            if let Some(id) = tc.sample_barrier(barrier, epoch) {
                tc.stamp(id, hop::BAR_ARRIVE, 0, now);
                tc.episode = Some(id);
            }
        }
    }

    /// Close the open barrier episode, if any, at the cycle this CE
    /// observed the release.
    fn trace_barrier_release(&mut self, now: Cycle) {
        if let Some(tc) = self.trace_ctl.as_deref_mut() {
            if let Some(id) = tc.episode.take() {
                tc.stamp(id, hop::BAR_RELEASE, 0, now);
            }
        }
    }

    /// Drain this engine's trace stamps (controller, then prefetch unit):
    /// `(events, overflow drops)`.
    pub(crate) fn drain_trace(&mut self) -> (Vec<TraceEvent>, u64) {
        let (mut ev, mut dropped) = match self.trace_ctl.as_deref_mut() {
            Some(tc) => (
                std::mem::take(&mut tc.buf.events),
                std::mem::replace(&mut tc.buf.dropped, 0),
            ),
            None => (Vec::new(), 0),
        };
        let (mut pev, pd) = self.pfu.drain_trace();
        ev.append(&mut pev);
        dropped += pd;
        (ev, dropped)
    }

    /// Take and advance the use count for `barrier`.
    fn next_barrier_use(&mut self, barrier: usize) -> u64 {
        if self.barrier_uses.len() <= barrier {
            self.barrier_uses.resize(barrier + 1, 0);
        }
        let e = self.barrier_uses[barrier];
        self.barrier_uses[barrier] += 1;
        e
    }

    fn queue_pkt(&mut self, now: Cycle, ctx: &mut CeContext<'_>, mut pkt: Packet) {
        debug_assert!(self.pending_pkt.is_none());
        // Journey sampling — before fault tracking, so a tracked packet
        // (and therefore every resend of it) carries its journey id.
        // Inside a sampled barrier episode every sync op (the arrival and
        // the polls) joins the episode's journey instead of rolling its
        // own sample.
        if let Some(tc) = self.trace_ctl.as_deref_mut() {
            if let Payload::Request(req) = &mut pkt.payload {
                if req.trace == 0 && !matches!(req.stream, Stream::Prefetch { .. }) {
                    let (id, cls) = match (tc.episode, &req.stream) {
                        (Some(ep), Stream::Sync) => (ep, class::BARRIER),
                        _ => {
                            let cls = match req.stream {
                                Stream::Scalar => class::SCALAR,
                                Stream::WriteAck => class::WRITE,
                                Stream::Sync => class::SYNC,
                                Stream::Direct { .. } => class::DIRECT,
                                Stream::Prefetch { .. } => unreachable!("filtered above"),
                            };
                            (tc.sample_mem(), cls)
                        }
                    };
                    if id != 0 {
                        req.trace = id;
                        tc.stamp(id, hop::ISSUE, cls, now);
                    }
                }
            }
        }
        // Under a fault plan every engine-issued request gets a sequence
        // number and is tracked to completion; resends arrive here with
        // their number already assigned and must not be re-tracked.
        if let Some(ctl) = self.fault_ctl.as_deref_mut() {
            if let Payload::Request(req) = &mut pkt.payload {
                if req.seq == 0 && !matches!(req.stream, Stream::Prefetch { .. }) {
                    req.seq = self.next_seq;
                    self.next_seq += 1;
                    let seq = req.seq;
                    ctl.track(seq, pkt, now);
                }
            }
        }
        if !ctx.forward.try_inject(self.id.port().0, pkt) {
            self.pending_pkt = Some(pkt);
        }
    }

    fn send_sync(&mut self, now: Cycle, ctx: &mut CeContext<'_>, addr: u64, instr: SyncInstr) {
        let pkt = Packet::sync_request(
            module_of(addr, self.modules).0,
            MemRequest {
                ce: self.id,
                kind: RequestKind::Sync(instr),
                addr,
                stream: Stream::Sync,
                issued: now,
                seq: 0,
                nacked: false,
                trace: 0,
            },
        );
        self.queue_pkt(now, ctx, pkt);
    }

    /// VM address translation; returns true (and charges the stall) on a
    /// TLB miss when VM modelling is enabled. A miss whose PTE is valid in
    /// global memory costs the PTE fetch; a machine-wide first touch is a
    /// hard fault serviced by Xylem.
    fn vm_check(&mut self, now: Cycle, ctx: &mut CeContext<'_>, addr: u64) -> bool {
        if !self.vm_enabled {
            return false;
        }
        let page = page_of(addr, self.page_words);
        if ctx.tlb.touch(page) {
            false
        } else {
            self.stats.tlb_misses += 1;
            let cost = if ctx.page_table.miss(page) {
                u64::from(self.tlb_miss_cycles)
            } else {
                self.stats.page_faults += 1;
                u64::from(self.page_fault_cycles)
            };
            self.stats.vm_cycles += cost;
            self.vm_stall_until = now + cost;
            true
        }
    }
}

use crate::snapshot::{get_packet, put_packet, SnapReader, SnapResult, SnapWriter};

fn put_frame_kind(w: &mut SnapWriter, k: &FrameKind) {
    match k {
        FrameKind::Root => w.u8(0),
        FrameKind::Repeat { remaining } => {
            w.u8(1);
            w.u32(*remaining);
        }
        FrameKind::SelfSched {
            counter,
            limit,
            chunk,
            dispatch_cost,
            epoch,
            chunk_end,
        } => {
            w.u8(2);
            w.usize(*counter);
            w.u64(*limit);
            w.u32(*chunk);
            w.u32(*dispatch_cost);
            w.u64(*epoch);
            w.u64(*chunk_end);
        }
    }
}

fn get_frame_kind(r: &mut SnapReader) -> SnapResult<FrameKind> {
    Ok(match r.u8()? {
        0 => FrameKind::Root,
        1 => FrameKind::Repeat {
            remaining: r.u32()?,
        },
        2 => FrameKind::SelfSched {
            counter: r.usize()?,
            limit: r.u64()?,
            chunk: r.u32()?,
            dispatch_cost: r.u32()?,
            epoch: r.u64()?,
            chunk_end: r.u64()?,
        },
        b => return Err(r.err_invalid("frame kind", b)),
    })
}

fn put_ce_state(w: &mut SnapWriter, s: &CeState) {
    match s {
        CeState::Fetch => w.u8(0),
        CeState::Stall { until } => {
            w.u8(1);
            w.cycle(*until);
        }
        CeState::VectorDirect {
            base,
            stride,
            length,
            issued,
            completed,
            start_at,
            gather,
        } => {
            w.u8(2);
            w.u64(*base);
            w.i64(*stride);
            w.u32(*length);
            w.u32(*issued);
            w.u32(*completed);
            w.cycle(*start_at);
            w.bool(*gather);
        }
        CeState::VectorPref {
            length,
            consumed,
            start_at,
        } => {
            w.u8(3);
            w.u32(*length);
            w.u32(*consumed);
            w.cycle(*start_at);
        }
        CeState::VectorGWrite {
            base,
            stride,
            length,
            issued,
            start_at,
            scatter,
        } => {
            w.u8(4);
            w.u64(*base);
            w.i64(*stride);
            w.u32(*length);
            w.u32(*issued);
            w.cycle(*start_at);
            w.bool(*scatter);
        }
        CeState::VectorCache {
            base,
            stride,
            write,
            length,
            issued,
            last_ready,
            start_at,
        } => {
            w.u8(5);
            w.u64(*base);
            w.i64(*stride);
            w.bool(*write);
            w.u32(*length);
            w.u32(*issued);
            w.cycle(*last_ready);
            w.cycle(*start_at);
        }
        CeState::AwaitScalarRead => w.u8(6),
        CeState::AwaitSync => w.u8(7),
        CeState::AwaitCounter => w.u8(8),
        CeState::AwaitClusterBarrier => w.u8(9),
        CeState::GlobalBarrier {
            barrier,
            epoch,
            phase,
            misses,
        } => {
            w.u8(10);
            w.usize(*barrier);
            w.u64(*epoch);
            match phase {
                GbPhase::AwaitArrive => w.u8(0),
                GbPhase::PollWait { at } => {
                    w.u8(1);
                    w.cycle(*at);
                }
                GbPhase::AwaitPoll => w.u8(2),
            }
            w.u32(*misses);
        }
        CeState::AwaitFence => w.u8(11),
        CeState::Done => w.u8(12),
    }
}

fn get_ce_state(r: &mut SnapReader) -> SnapResult<CeState> {
    Ok(match r.u8()? {
        0 => CeState::Fetch,
        1 => CeState::Stall { until: r.cycle()? },
        2 => CeState::VectorDirect {
            base: r.u64()?,
            stride: r.i64()?,
            length: r.u32()?,
            issued: r.u32()?,
            completed: r.u32()?,
            start_at: r.cycle()?,
            gather: r.bool()?,
        },
        3 => CeState::VectorPref {
            length: r.u32()?,
            consumed: r.u32()?,
            start_at: r.cycle()?,
        },
        4 => CeState::VectorGWrite {
            base: r.u64()?,
            stride: r.i64()?,
            length: r.u32()?,
            issued: r.u32()?,
            start_at: r.cycle()?,
            scatter: r.bool()?,
        },
        5 => CeState::VectorCache {
            base: r.u64()?,
            stride: r.i64()?,
            write: r.bool()?,
            length: r.u32()?,
            issued: r.u32()?,
            last_ready: r.cycle()?,
            start_at: r.cycle()?,
        },
        6 => CeState::AwaitScalarRead,
        7 => CeState::AwaitSync,
        8 => CeState::AwaitCounter,
        9 => CeState::AwaitClusterBarrier,
        10 => CeState::GlobalBarrier {
            barrier: r.usize()?,
            epoch: r.u64()?,
            phase: match r.u8()? {
                0 => GbPhase::AwaitArrive,
                1 => GbPhase::PollWait { at: r.cycle()? },
                2 => GbPhase::AwaitPoll,
                b => return Err(r.err_invalid("barrier phase", b)),
            },
            misses: r.u32()?,
        },
        11 => CeState::AwaitFence,
        12 => CeState::Done,
        b => return Err(r.err_invalid("engine state", b)),
    })
}

impl CeEngine {
    /// Serialize the engine's complete mutable state. The program tree,
    /// lowered micro-op stream and CE configuration are not written —
    /// the restoring machine is constructed with the identical program,
    /// and interpreter frames are stored as `(pc, kind)` pairs whose
    /// block references are rebuilt by walking the program tree.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.tag(b"CENG");
        w.seq(self.frames.iter(), |w, f| {
            w.usize(f.pc);
            put_frame_kind(w, &f.kind);
        });
        w.opt(self.flat.as_ref(), |w, f| {
            w.u32(f.pc);
            w.seq(f.frames.iter(), |w, fr| {
                w.u32(fr.head);
                w.u32(fr.end);
                put_frame_kind(w, &fr.kind);
            });
            w.bool(f.fire_pending);
        });
        w.cycle(self.quiet_until);
        w.seq(self.indices.iter(), |w, v| w.u64(*v));
        put_ce_state(w, &self.state);
        self.pfu.save_state(w);
        w.opt(self.pending_pkt.as_ref(), put_packet);
        w.u32(self.outstanding_reads);
        w.u32(self.outstanding_writes);
        w.seq(self.direct_ready.iter(), |w, c| w.cycle(*c));
        w.opt(self.scalar_ready.as_ref(), |w, c| w.cycle(*c));
        w.opt(self.sync_result.as_ref(), |w, o| {
            w.i32(o.old);
            w.bool(o.passed);
        });
        w.seq(self.counter_epochs.iter(), |w, v| w.u64(*v));
        w.seq(self.barrier_uses.iter(), |w, v| w.u64(*v));
        w.bool(self.sdoall_must_fetch);
        w.bool(self.sdoall_awaiting_reply);
        w.cycle(self.vm_stall_until);
        w.opt(self.fault_ctl.as_deref(), |w, c| c.save_state(w));
        w.u64(self.next_seq);
        w.opt(self.trace_ctl.as_deref(), |w, t| t.save_state(w));
        w.u64(self.stats.flops);
        w.u64(self.stats.vector_elements);
        w.u64(self.stats.busy);
        w.u64(self.stats.idle);
        w.u64(self.stats.stall_mem);
        w.u64(self.stats.stall_sync);
        w.u64(self.stats.tlb_misses);
        w.u64(self.stats.page_faults);
        w.u64(self.stats.vm_cycles);
        w.u64(self.stats.done_at);
    }

    /// Restore state written by [`CeEngine::save_state`] into an engine
    /// freshly constructed with the identical program and configuration.
    /// Interpreter frame blocks are rebuilt by walking the loaded program
    /// tree: a child frame can only exist after its parent dispatched the
    /// loop op (which advances the parent pc first), so the child's block
    /// is the body of the op at `parent.pc - 1`.
    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        r.tag(b"CENG")?;
        let n_frames = r.len()?;
        if n_frames == 0 {
            return Err(r.err_mismatch("engine must hold at least the root frame"));
        }
        self.frames.truncate(1);
        self.frames[0].pc = r.usize()?;
        self.frames[0].kind = get_frame_kind(r)?;
        if !matches!(self.frames[0].kind, FrameKind::Root) {
            return Err(r.err_mismatch("first engine frame is not the root frame"));
        }
        if self.frames[0].pc > self.frames[0].block.len() {
            return Err(r.err_mismatch("root frame pc beyond the program body"));
        }
        for _ in 1..n_frames {
            let pc = r.usize()?;
            let kind = get_frame_kind(r)?;
            let parent = self.frames.last().expect("frames are non-empty");
            let block = if parent.pc == 0 || parent.pc > parent.block.len() {
                None
            } else {
                match &parent.block[parent.pc - 1] {
                    Op::Repeat { body, .. } => Some(Arc::clone(body)),
                    Op::SelfSchedLoop { body, .. } => Some(Arc::clone(body)),
                    _ => None,
                }
            };
            let Some(block) = block else {
                return Err(r.err_mismatch("frame stack does not match the loaded program"));
            };
            if pc > block.len() {
                return Err(r.err_mismatch("frame pc beyond its block"));
            }
            self.frames.push(Frame { block, pc, kind });
        }
        let had_flat = r.bool()?;
        match (had_flat, self.flat.is_some()) {
            (true, true) => {
                let flat = self.flat.as_mut().expect("checked above");
                let n_uops = flat.prog.uops().len() as u32;
                let pc = r.u32()?;
                if pc > n_uops {
                    return Err(r.err_mismatch("flat pc beyond the micro-op stream"));
                }
                flat.pc = pc;
                flat.frames = r.seq(|r| {
                    Ok(LFrame {
                        head: r.u32()?,
                        end: r.u32()?,
                        kind: get_frame_kind(r)?,
                    })
                })?;
                if flat
                    .frames
                    .iter()
                    .any(|fr| fr.head > n_uops || fr.end >= n_uops)
                {
                    return Err(r.err_mismatch("flat loop frame beyond the micro-op stream"));
                }
                flat.fire_pending = r.bool()?;
            }
            (false, false) => {}
            _ => {
                return Err(r.err_mismatch(
                    "snapshot lowering state disagrees with this machine's lowering setup",
                ));
            }
        }
        self.quiet_until = r.cycle()?;
        self.indices = r.seq(|r| r.u64())?;
        self.state = get_ce_state(r)?;
        self.pfu.load_state(r)?;
        self.pending_pkt = r.opt(get_packet)?;
        self.outstanding_reads = r.u32()?;
        self.outstanding_writes = r.u32()?;
        self.direct_ready = r.seq(|r| r.cycle())?.into();
        self.scalar_ready = r.opt(|r| r.cycle())?;
        self.sync_result = r.opt(|r| {
            Ok(SyncOutcome {
                old: r.i32()?,
                passed: r.bool()?,
            })
        })?;
        self.counter_epochs = r.seq(|r| r.u64())?;
        self.barrier_uses = r.seq(|r| r.u64())?;
        self.sdoall_must_fetch = r.bool()?;
        self.sdoall_awaiting_reply = r.bool()?;
        self.vm_stall_until = r.cycle()?;
        let had_fault = r.bool()?;
        match (had_fault, self.fault_ctl.as_deref_mut()) {
            (true, Some(c)) => c.load_state(r)?,
            (false, None) => {}
            _ => {
                return Err(r.err_mismatch(
                    "snapshot retry-controller state disagrees with this machine's fault plan",
                ));
            }
        }
        self.next_seq = r.u64()?;
        let had_trace = r.bool()?;
        match (had_trace, self.trace_ctl.as_deref_mut()) {
            (true, Some(t)) => t.load_state(r)?,
            (false, None) => {}
            _ => {
                return Err(r.err_mismatch(
                    "snapshot journey-tracing state disagrees with this machine's tracing setup",
                ));
            }
        }
        self.stats = CeStats {
            flops: r.u64()?,
            vector_elements: r.u64()?,
            busy: r.u64()?,
            idle: r.u64()?,
            stall_mem: r.u64()?,
            stall_sync: r.u64()?,
            tlb_misses: r.u64()?,
            page_faults: r.u64()?,
            vm_cycles: r.u64()?,
            done_at: r.u64()?,
        };
        Ok(())
    }
}

/// The earlier of two optional wakeup cycles (`None` = no event).
pub(crate) fn min_event(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Sanity: epoch spacing is far beyond any realistic loop re-entry count.
const _: () = assert!(EPOCH_SPACING > 1 << 20);

//! Ahead-of-run lowering of CE programs to flat micro-op streams.
//!
//! The interpreter in [`ce`](crate::ce) walks the recursive [`Block`]
//! tree, re-resolving an `Arc` and re-decoding a full [`Op`] — address
//! expressions, nested blocks and all — every time it dispatches. This
//! module compiles a [`Program`] once, before the run starts, into an
//! [`LProgram`]: a single flat array of small `Copy` micro-ops with
//! resolved branch targets (loop heads and ends become indices patched by
//! label fixups, VCode-style), address expressions interned into a side
//! table, and *superinstructions* fused out of the dominant sequences:
//!
//! * **Timed runs** — maximal straight-line stretches of purely timed
//!   work (scalar busy cycles, scalar flops, register-register vector
//!   ops) collapse into one [`UOp::TimedRun`] that charges the whole
//!   segment as a single stall. The engine parks in `Stall { until }`,
//!   reports the segment end through `next_event`, and the run loop
//!   bulk-credits the busy cycles — one dispatch instead of one per op.
//! * **Pure loop collapse** — a `Repeat` whose body is entirely timed
//!   work folds into the enclosing timed run: `count × body` cycles,
//!   flops and elements, zero interpretive loop overhead.
//! * **Arm+fire pairs** — a `PrefetchArm` immediately followed by a
//!   `PrefetchFire` becomes one [`UOp::ArmFire`] slot executed in two
//!   cycle-exact phases.
//!
//! # The oracle contract
//!
//! Lowered execution must be **bit-for-bit identical** to the
//! interpreter: same cycle counts, same per-cycle busy/stall/idle
//! attribution, same packet issue cycles, same stats registries, memory
//! digests and journey stamps, at every thread count, with fast-forward
//! on or off, under faults and tracing. Two invariants carry the proof:
//!
//! 1. **Fusion only spans ops the interpreter executes back-to-back in
//!    a continuous busy stall.** Every op folded into a timed run has
//!    duration ≥ 1 cycle, so the interpreter dispatches at most one of
//!    them per tick and each tick charges `busy`; the tick in which one
//!    op's stall expires is the tick that dispatches the next, so the
//!    fused `Stall` ends on exactly the cycle the interpreter fetches
//!    the first op *after* the segment. Flops and vector-element
//!    counters accrue at segment start instead of spread across it,
//!    which no mid-run observer can see: utilization samples carry only
//!    the busy/stall/idle split, and reports are taken at run end.
//!    Zero-duration ops (`ScalarFlops { flops: 0 }`, degenerate
//!    vectors) are emitted as standalone micro-ops instead: chains of
//!    them interact with the engine's 16-step-per-tick cap, which the
//!    shared tick loop already reproduces exactly for unfused ops.
//! 2. **Collapsed regions stay under the step cap.** At a collapsed
//!    loop boundary the interpreter spends one step per frame popped
//!    and one per frame entered within a single tick. Collapse is
//!    limited to nests of depth ≤ [`MAX_COLLAPSE_DEPTH`], so the worst
//!    boundary tick (pop a full nest, enter the next full nest, plus
//!    the stall-resolve, dispatch and blocked steps) stays within the
//!    16-step budget and the interpreter never splits a fused region
//!    across ticks.
//!
//! Everything that touches the outside world — memory traffic, sync
//! ops, barriers, prefetch, event posts — lowers 1:1 onto micro-ops
//! that drive the *same* engine helpers as the interpreter, so the
//! packet streams are identical by construction. The interpreter itself
//! stays verbatim behind the default-on `MachineConfig::lowered` /
//! `CEDAR_NO_LOWER` hatch as the differential oracle; `tests/lower.rs`
//! and the randomized program property test enforce the contract.

use std::sync::Arc;

use crate::memory::sync::SyncInstr;
use crate::program::{MemOperand, Op, Program};

/// Deepest loop nesting a pure region may collapse. At a region boundary
/// the interpreter can pop one full nest and enter the next in a single
/// tick: `1 (stall resolve) + D (pops) + D (enters) + 1 (dispatch) + 1
/// (blocked)` steps. With `D = 6` that worst case is 15, inside the
/// engine's 16-step-per-tick cap, so the interpreter never caps — and
/// therefore never re-times — inside a region the lowerer fused.
pub const MAX_COLLAPSE_DEPTH: usize = 6;

/// Index into an [`LProgram`]'s interned address-expression table.
pub type AddrIdx = u32;

/// One lowered micro-op. `Copy` and self-contained: decoding is a match
/// on a small value, with no `Arc` chasing and no nested blocks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UOp {
    /// A fused straight-line stretch of purely timed work: charge
    /// `cycles` busy cycles as one stall, accruing `flops` and
    /// `elements` at dispatch.
    TimedRun {
        cycles: u64,
        flops: u64,
        elements: u64,
    },
    /// [`Op::ScalarGlobalRead`].
    ScalarGlobalRead { addr: AddrIdx },
    /// [`Op::ScalarGlobalWrite`].
    ScalarGlobalWrite { addr: AddrIdx },
    /// Vector op consuming the prefetch buffer (`MemOperand::Prefetched`).
    VecPref { length: u32, flops: u64 },
    /// Vector op with a direct global-memory read operand
    /// (`GlobalRead` / `GlobalGather`).
    VecDirect {
        addr: AddrIdx,
        stride: i64,
        length: u32,
        flops: u64,
        gather: bool,
    },
    /// Vector op writing global memory (`GlobalWrite` / `GlobalScatter`).
    VecGWrite {
        addr: AddrIdx,
        stride: i64,
        length: u32,
        flops: u64,
        scatter: bool,
    },
    /// Vector op through the cluster cache (`ClusterRead` / `ClusterWrite`).
    VecCache {
        addr: AddrIdx,
        stride: i64,
        length: u32,
        flops: u64,
        write: bool,
    },
    /// [`Op::PrefetchArm`] (unpaired).
    PrefetchArm { length: u32, stride: i64 },
    /// [`Op::PrefetchFire`] (unpaired).
    PrefetchFire { base: AddrIdx },
    /// Fused `PrefetchArm` + `PrefetchFire`: one slot, executed in two
    /// cycle-exact phases (arm, then fire).
    ArmFire {
        length: u32,
        stride: i64,
        base: AddrIdx,
    },
    /// [`Op::PrefetchRewind`].
    PrefetchRewind,
    /// Enter a counted loop whose matching [`UOp::LoopEnd`] sits at
    /// index `end`; the body starts at the next micro-op.
    EnterRepeat { count: u32, end: u32 },
    /// Back-edge / exit of a counted loop (targets live in the frame).
    LoopEnd,
    /// Enter a self-scheduled loop whose matching [`UOp::SelfSchedEnd`]
    /// sits at index `end`.
    EnterSelfSched {
        counter: u32,
        limit: u64,
        chunk: u32,
        dispatch_cost: u32,
        end: u32,
    },
    /// Back-edge / chunk-refetch point of a self-scheduled loop.
    SelfSchedEnd,
    /// [`Op::Barrier`].
    Barrier { barrier: u32 },
    /// [`Op::SyncOp`].
    SyncOp { addr: AddrIdx, instr: SyncInstr },
    /// [`Op::Fence`].
    Fence,
    /// [`Op::PostEvent`].
    PostEvent { tag: u32 },
}

/// Static shape of a lowered program, for the `program.*` stats keys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LowerMeta {
    /// Source ops in the `Op` tree (loop bodies included).
    pub source_ops: usize,
    /// Micro-ops after lowering.
    pub uops: usize,
    /// Source ops absorbed into fused superinstructions (timed runs
    /// covering ≥ 2 ops, collapsed loops, arm+fire pairs).
    pub fused_ops: usize,
    /// Deepest loop nesting in the source program.
    pub max_loop_depth: usize,
}

/// A compiled CE program: one flat micro-op array with an interned
/// address table. Shared across the CEs loaded with the same `Block`.
#[derive(Debug)]
pub struct LProgram {
    uops: Box<[UOp]>,
    addrs: Box<[crate::program::AddressExpr]>,
    meta: LowerMeta,
}

impl LProgram {
    /// The micro-op stream.
    #[inline]
    pub fn uops(&self) -> &[UOp] {
        &self.uops
    }

    /// Resolve an interned address expression.
    #[inline]
    pub fn addr(&self, idx: AddrIdx) -> &crate::program::AddressExpr {
        &self.addrs[idx as usize]
    }

    /// Static shape.
    pub fn meta(&self) -> LowerMeta {
        self.meta
    }
}

/// The cost of a purely timed region, as the interpreter would charge it.
#[derive(Debug, Clone, Copy, Default)]
struct PureCost {
    cycles: u64,
    flops: u64,
    elements: u64,
    /// Source ops covered.
    ops: usize,
    /// Loop-nesting depth inside the region.
    depth: usize,
}

/// The duration the interpreter charges for a purely timed leaf op, or
/// `None` if the op is not a timed leaf (or takes zero cycles — those
/// are emitted standalone; see the module docs on the step cap).
fn timed_leaf(op: &Op, startup: u64) -> Option<(u64, u64, u64)> {
    match op {
        Op::ScalarWork { cycles } => Some((u64::from((*cycles).max(1)), 0, 0)),
        Op::ScalarFlops {
            flops,
            cycles_per_flop,
        } if *flops >= 1 => Some((
            u64::from(*flops) * u64::from((*cycles_per_flop).max(1)),
            u64::from(*flops),
            0,
        )),
        Op::Vector(v) if matches!(v.operand, MemOperand::None) => {
            let cycles = startup + u64::from(v.length);
            (cycles >= 1).then(|| {
                (
                    cycles,
                    u64::from(v.flops_per_element) * u64::from(v.length),
                    u64::from(v.length),
                )
            })
        }
        _ => None,
    }
}

/// Total cost of a block if it is purely timed (every op a positive-
/// duration timed leaf or a nonzero-count `Repeat` of such a block),
/// else `None`. Overflow also returns `None` — the region is then
/// lowered without collapse and the interpreter's own arithmetic rules.
fn pure_cost(block: &[Op], startup: u64) -> Option<PureCost> {
    let mut c = PureCost::default();
    for op in block {
        if let Some((cycles, flops, elements)) = timed_leaf(op, startup) {
            c.cycles = c.cycles.checked_add(cycles)?;
            c.flops = c.flops.checked_add(flops)?;
            c.elements = c.elements.checked_add(elements)?;
            c.ops += 1;
            continue;
        }
        match op {
            Op::Repeat { count, body } if *count >= 1 => {
                let p = pure_cost(body, startup)?;
                if p.cycles == 0 {
                    return None; // empty body: the interpreter spins steps, not cycles
                }
                let n = u64::from(*count);
                c.cycles = c.cycles.checked_add(p.cycles.checked_mul(n)?)?;
                c.flops = c.flops.checked_add(p.flops.checked_mul(n)?)?;
                c.elements = c.elements.checked_add(p.elements.checked_mul(n)?)?;
                c.ops += 1 + p.ops;
                c.depth = c.depth.max(1 + p.depth);
            }
            _ => return None,
        }
    }
    Some(c)
}

struct Emitter {
    uops: Vec<UOp>,
    addrs: Vec<crate::program::AddressExpr>,
    /// Pending timed-run accumulator: `(cost)` of the pure stretch seen
    /// since the last impure op.
    acc: Option<PureCost>,
    fused_ops: usize,
    startup: u64,
}

impl Emitter {
    fn intern(&mut self, a: &crate::program::AddressExpr) -> AddrIdx {
        let idx = u32::try_from(self.addrs.len()).expect("address table overflow");
        self.addrs.push(a.clone());
        idx
    }

    /// Fold a pure cost into the pending timed run.
    fn accumulate(&mut self, p: PureCost) {
        let acc = self.acc.get_or_insert_with(PureCost::default);
        acc.cycles += p.cycles;
        acc.flops += p.flops;
        acc.elements += p.elements;
        acc.ops += p.ops;
    }

    /// Emit the pending timed run, if any.
    fn flush(&mut self) {
        if let Some(acc) = self.acc.take() {
            if acc.ops >= 2 {
                self.fused_ops += acc.ops;
            }
            self.uops.push(UOp::TimedRun {
                cycles: acc.cycles,
                flops: acc.flops,
                elements: acc.elements,
            });
        }
    }

    fn emit_block(&mut self, block: &[Op]) {
        let mut i = 0;
        while i < block.len() {
            let op = &block[i];
            // Maximal pure stretches fold into the accumulator.
            if let Some((cycles, flops, elements)) = timed_leaf(op, self.startup) {
                self.accumulate(PureCost {
                    cycles,
                    flops,
                    elements,
                    ops: 1,
                    depth: 0,
                });
                i += 1;
                continue;
            }
            match op {
                // Zero-duration timed leaves: standalone, never fused
                // (the interpreter's step cap governs chains of them).
                Op::ScalarWork { .. } | Op::ScalarFlops { .. } => {
                    self.flush();
                    let (flops, elements) = match op {
                        Op::ScalarFlops { flops, .. } => (u64::from(*flops), 0),
                        _ => (0, 0),
                    };
                    self.uops.push(UOp::TimedRun {
                        cycles: 0,
                        flops,
                        elements,
                    });
                }
                Op::Vector(v) => self.emit_vector(v),
                Op::ScalarGlobalRead { addr } => {
                    self.flush();
                    let addr = self.intern(addr);
                    self.uops.push(UOp::ScalarGlobalRead { addr });
                }
                Op::ScalarGlobalWrite { addr } => {
                    self.flush();
                    let addr = self.intern(addr);
                    self.uops.push(UOp::ScalarGlobalWrite { addr });
                }
                Op::PrefetchArm { length, stride } => {
                    self.flush();
                    // Arm immediately followed by fire fuses into one slot.
                    if let Some(Op::PrefetchFire { base }) = block.get(i + 1) {
                        let base = self.intern(base);
                        self.uops.push(UOp::ArmFire {
                            length: *length,
                            stride: *stride,
                            base,
                        });
                        self.fused_ops += 2;
                        i += 2;
                        continue;
                    }
                    self.uops.push(UOp::PrefetchArm {
                        length: *length,
                        stride: *stride,
                    });
                }
                Op::PrefetchFire { base } => {
                    self.flush();
                    let base = self.intern(base);
                    self.uops.push(UOp::PrefetchFire { base });
                }
                Op::PrefetchRewind => {
                    self.flush();
                    self.uops.push(UOp::PrefetchRewind);
                }
                Op::Repeat { count, body } => {
                    // A pure body of bounded depth collapses into the
                    // enclosing timed run: no loop machinery at all.
                    if *count >= 1 {
                        if let Some(p) = pure_cost(body, self.startup) {
                            if p.cycles >= 1 && p.depth < MAX_COLLAPSE_DEPTH {
                                let n = u64::from(*count);
                                if let (Some(cycles), Some(flops), Some(elements)) = (
                                    p.cycles.checked_mul(n),
                                    p.flops.checked_mul(n),
                                    p.elements.checked_mul(n),
                                ) {
                                    self.accumulate(PureCost {
                                        cycles,
                                        flops,
                                        elements,
                                        ops: 1 + p.ops,
                                        depth: 1 + p.depth,
                                    });
                                    i += 1;
                                    continue;
                                }
                            }
                        }
                    }
                    self.flush();
                    let at = self.uops.len();
                    self.uops.push(UOp::EnterRepeat {
                        count: *count,
                        end: 0, // fixed up below
                    });
                    self.emit_block(body);
                    self.flush();
                    let end = u32::try_from(self.uops.len()).expect("uop stream overflow");
                    self.uops.push(UOp::LoopEnd);
                    let UOp::EnterRepeat { end: slot, .. } = &mut self.uops[at] else {
                        unreachable!("fixup target moved");
                    };
                    *slot = end;
                }
                Op::SelfSchedLoop {
                    counter,
                    limit,
                    chunk,
                    dispatch_cost,
                    body,
                } => {
                    self.flush();
                    let at = self.uops.len();
                    self.uops.push(UOp::EnterSelfSched {
                        counter: u32::try_from(counter.0).expect("counter id overflow"),
                        limit: *limit,
                        chunk: *chunk,
                        dispatch_cost: *dispatch_cost,
                        end: 0, // fixed up below
                    });
                    self.emit_block(body);
                    self.flush();
                    let end = u32::try_from(self.uops.len()).expect("uop stream overflow");
                    self.uops.push(UOp::SelfSchedEnd);
                    let UOp::EnterSelfSched { end: slot, .. } = &mut self.uops[at] else {
                        unreachable!("fixup target moved");
                    };
                    *slot = end;
                }
                Op::Barrier { barrier } => {
                    self.flush();
                    self.uops.push(UOp::Barrier {
                        barrier: u32::try_from(barrier.0).expect("barrier id overflow"),
                    });
                }
                Op::SyncOp { addr, instr } => {
                    self.flush();
                    let addr = self.intern(addr);
                    self.uops.push(UOp::SyncOp {
                        addr,
                        instr: *instr,
                    });
                }
                Op::Fence => {
                    self.flush();
                    self.uops.push(UOp::Fence);
                }
                Op::PostEvent { tag } => {
                    self.flush();
                    self.uops.push(UOp::PostEvent { tag: *tag });
                }
            }
            i += 1;
        }
    }

    fn emit_vector(&mut self, v: &crate::program::VectorOp) {
        self.flush();
        let flops = u64::from(v.flops_per_element) * u64::from(v.length);
        let uop = match &v.operand {
            MemOperand::None => {
                // Only reachable for the zero-duration degenerate case
                // (positive durations were consumed as timed leaves).
                UOp::TimedRun {
                    cycles: self.startup + u64::from(v.length),
                    flops,
                    elements: u64::from(v.length),
                }
            }
            MemOperand::Prefetched => UOp::VecPref {
                length: v.length,
                flops,
            },
            MemOperand::GlobalRead { addr, stride } => UOp::VecDirect {
                addr: self.intern(addr),
                stride: *stride,
                length: v.length,
                flops,
                gather: false,
            },
            MemOperand::GlobalGather { addr } => UOp::VecDirect {
                addr: self.intern(addr),
                stride: 1,
                length: v.length,
                flops,
                gather: true,
            },
            MemOperand::GlobalWrite { addr, stride } => UOp::VecGWrite {
                addr: self.intern(addr),
                stride: *stride,
                length: v.length,
                flops,
                scatter: false,
            },
            MemOperand::GlobalScatter { addr } => UOp::VecGWrite {
                addr: self.intern(addr),
                stride: 1,
                length: v.length,
                flops,
                scatter: true,
            },
            MemOperand::ClusterRead { addr, stride } => UOp::VecCache {
                addr: self.intern(addr),
                stride: *stride,
                length: v.length,
                flops,
                write: false,
            },
            MemOperand::ClusterWrite { addr, stride } => UOp::VecCache {
                addr: self.intern(addr),
                stride: *stride,
                length: v.length,
                flops,
                write: true,
            },
        };
        self.uops.push(uop);
    }
}

/// Compile a program into its flat micro-op form. `vector_startup` is
/// the CE's vector startup cost, needed to price register-register
/// vector ops into timed runs.
pub fn lower(program: &Program, vector_startup: u32) -> Arc<LProgram> {
    let mut em = Emitter {
        uops: Vec::new(),
        addrs: Vec::new(),
        acc: None,
        fused_ops: 0,
        startup: u64::from(vector_startup),
    };
    em.emit_block(program.body());
    em.flush();
    let tree = program.meta();
    let meta = LowerMeta {
        source_ops: tree.ops,
        uops: em.uops.len(),
        fused_ops: em.fused_ops,
        max_loop_depth: tree.max_loop_depth,
    };
    Arc::new(LProgram {
        uops: em.uops.into_boxed_slice(),
        addrs: em.addrs.into_boxed_slice(),
        meta,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CounterId;
    use crate::program::{AddressExpr, ProgramBuilder, VectorOp};

    const STARTUP: u32 = 12;

    fn vec_none(length: u32) -> VectorOp {
        VectorOp {
            length,
            flops_per_element: 2,
            operand: MemOperand::None,
        }
    }

    #[test]
    fn straight_line_timed_ops_fuse_into_one_run() {
        let mut b = ProgramBuilder::new();
        b.scalar(10);
        b.vector(vec_none(32));
        b.push(Op::ScalarFlops {
            flops: 4,
            cycles_per_flop: 3,
        });
        let p = b.build();
        let lp = lower(&p, STARTUP);
        assert_eq!(
            lp.uops(),
            &[UOp::TimedRun {
                cycles: 10 + (12 + 32) + 12,
                flops: 64 + 4,
                elements: 32,
            }]
        );
        assert_eq!(lp.meta().fused_ops, 3);
        assert_eq!(lp.meta().source_ops, 3);
    }

    #[test]
    fn pure_repeat_collapses_with_count_scaling() {
        let mut b = ProgramBuilder::new();
        b.repeat(5, |b| {
            b.scalar(3);
            b.vector(vec_none(8));
        });
        let lp = lower(&b.build(), STARTUP);
        assert_eq!(
            lp.uops(),
            &[UOp::TimedRun {
                cycles: 5 * (3 + 12 + 8),
                flops: 5 * 16,
                elements: 5 * 8,
            }]
        );
        assert_eq!(lp.meta().fused_ops, 3);
    }

    #[test]
    fn nested_pure_repeats_collapse_up_to_the_depth_bound() {
        let deep = |levels: usize| {
            fn nest(b: &mut ProgramBuilder, levels: usize) {
                if levels == 0 {
                    b.scalar(1);
                } else {
                    b.repeat(2, |b| nest(b, levels - 1));
                }
            }
            let mut b = ProgramBuilder::new();
            nest(&mut b, levels);
            lower(&b.build(), STARTUP)
        };
        // Depth 6 collapses to a single timed run of 2^6 cycles...
        let lp = deep(MAX_COLLAPSE_DEPTH);
        assert_eq!(
            lp.uops(),
            &[UOp::TimedRun {
                cycles: 64,
                flops: 0,
                elements: 0,
            }]
        );
        // ...depth 7 keeps its outermost loop un-collapsed (the inner
        // 6 levels still fold) so the interpreter's step cap is safe.
        let lp = deep(MAX_COLLAPSE_DEPTH + 1);
        assert_eq!(
            lp.uops(),
            &[
                UOp::EnterRepeat { count: 2, end: 2 },
                UOp::TimedRun {
                    cycles: 64,
                    flops: 0,
                    elements: 0,
                },
                UOp::LoopEnd,
            ]
        );
    }

    #[test]
    fn impure_loops_get_label_fixups() {
        let mut b = ProgramBuilder::new();
        b.repeat(3, |b| {
            b.scalar(2);
            b.push(Op::SyncOp {
                addr: AddressExpr::new(64),
                instr: SyncInstr::fetch_add(1),
            });
        });
        b.scalar(7);
        let lp = lower(&b.build(), STARTUP);
        assert!(matches!(
            lp.uops()[0],
            UOp::EnterRepeat { count: 3, end: 3 }
        ));
        assert!(matches!(
            lp.uops()[1],
            UOp::TimedRun { cycles: 2, .. } // fusion barrier before the sync
        ));
        assert!(matches!(lp.uops()[2], UOp::SyncOp { .. }));
        assert!(matches!(lp.uops()[3], UOp::LoopEnd));
        assert!(matches!(lp.uops()[4], UOp::TimedRun { cycles: 7, .. }));
        assert_eq!(lp.meta().uops, 5);
    }

    #[test]
    fn self_sched_bodies_lower_with_fixups() {
        let mut b = ProgramBuilder::new();
        b.self_sched_with_cost(CounterId(0), 100, 4, 9, |b| {
            b.vector(vec_none(16));
        });
        let lp = lower(&b.build(), STARTUP);
        assert_eq!(
            lp.uops(),
            &[
                UOp::EnterSelfSched {
                    counter: 0,
                    limit: 100,
                    chunk: 4,
                    dispatch_cost: 9,
                    end: 2,
                },
                UOp::TimedRun {
                    cycles: 12 + 16,
                    flops: 32,
                    elements: 16,
                },
                UOp::SelfSchedEnd,
            ]
        );
    }

    #[test]
    fn arm_fire_pairs_fuse() {
        let mut b = ProgramBuilder::new();
        b.push(Op::PrefetchArm {
            length: 32,
            stride: 1,
        });
        b.push(Op::PrefetchFire {
            base: AddressExpr::new(4096),
        });
        b.push(Op::PrefetchRewind);
        b.push(Op::PrefetchFire {
            base: AddressExpr::new(8192),
        });
        let lp = lower(&b.build(), STARTUP);
        assert!(matches!(
            lp.uops()[0],
            UOp::ArmFire {
                length: 32,
                stride: 1,
                ..
            }
        ));
        assert!(matches!(lp.uops()[1], UOp::PrefetchRewind));
        assert!(matches!(lp.uops()[2], UOp::PrefetchFire { .. }));
        assert_eq!(lp.meta().fused_ops, 2);
    }

    #[test]
    fn zero_duration_ops_stay_standalone() {
        let mut b = ProgramBuilder::new();
        b.scalar(5);
        b.push(Op::ScalarFlops {
            flops: 0,
            cycles_per_flop: 1,
        });
        b.scalar(5);
        let lp = lower(&b.build(), STARTUP);
        assert_eq!(
            lp.uops(),
            &[
                UOp::TimedRun {
                    cycles: 5,
                    flops: 0,
                    elements: 0,
                },
                UOp::TimedRun {
                    cycles: 0,
                    flops: 0,
                    elements: 0,
                },
                UOp::TimedRun {
                    cycles: 5,
                    flops: 0,
                    elements: 0,
                },
            ]
        );
        assert_eq!(lp.meta().fused_ops, 0);
    }

    #[test]
    fn zero_count_repeat_is_an_empty_jump() {
        let mut b = ProgramBuilder::new();
        b.repeat(0, |b| {
            b.scalar(100);
        });
        b.scalar(1);
        let lp = lower(&b.build(), STARTUP);
        assert!(matches!(
            lp.uops()[0],
            UOp::EnterRepeat { count: 0, end: 2 }
        ));
        assert!(matches!(lp.uops()[3], UOp::TimedRun { cycles: 1, .. }));
    }

    #[test]
    fn addresses_intern_into_the_side_table() {
        let mut b = ProgramBuilder::new();
        b.push(Op::ScalarGlobalRead {
            addr: AddressExpr::new(10).with_coeff(0, 4),
        });
        b.push(Op::ScalarGlobalWrite {
            addr: AddressExpr::new(20),
        });
        let lp = lower(&b.build(), STARTUP);
        let UOp::ScalarGlobalRead { addr: a0 } = lp.uops()[0] else {
            panic!("expected read");
        };
        let UOp::ScalarGlobalWrite { addr: a1 } = lp.uops()[1] else {
            panic!("expected write");
        };
        assert_eq!(lp.addr(a0).eval(&[3]), 22);
        assert_eq!(lp.addr(a1).eval(&[]), 20);
    }

    #[test]
    fn empty_program_lowers_to_nothing() {
        let lp = lower(&Program::empty(), STARTUP);
        assert!(lp.uops().is_empty());
        assert_eq!(lp.meta(), LowerMeta::default());
    }
}

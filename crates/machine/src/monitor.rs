//! Performance-monitoring hardware.
//!
//! Cedar monitors performance with external hardware: event tracers that
//! each collect a million time-stamped events and histogrammers with 64 K
//! 32-bit counters, attachable to any accessible hardware signal; programs
//! can also post software events (§2 "Performance monitoring"). The
//! simulator provides the same two devices; the prefetch-latency numbers
//! of Table 2 come from probes built on them.

use crate::snapshot::{SnapReader, SnapResult, SnapWriter};
use crate::time::Cycle;

/// Default tracer capacity: 1 M events, as on the real hardware.
pub const TRACER_CAPACITY: usize = 1 << 20;

/// Default histogrammer size: 64 K 32-bit counters.
pub const HISTOGRAM_BINS: usize = 1 << 16;

/// A time-stamped event trace with bounded capacity.
///
/// # Examples
///
/// ```
/// use cedar_machine::monitor::EventTracer;
/// use cedar_machine::time::Cycle;
/// let mut t = EventTracer::with_capacity(2);
/// t.post(Cycle(1), 7);
/// t.post(Cycle(2), 8);
/// t.post(Cycle(3), 9); // dropped: tracer is full
/// assert_eq!(t.events().len(), 2);
/// assert_eq!(t.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct EventTracer {
    capacity: usize,
    events: Vec<(Cycle, u32)>,
    dropped: u64,
}

impl EventTracer {
    /// A tracer with the hardware's 1 M-event capacity.
    pub fn new() -> EventTracer {
        Self::with_capacity(TRACER_CAPACITY)
    }

    /// A tracer with a custom capacity (tracers can be cascaded on the
    /// real machine to capture more events).
    pub fn with_capacity(capacity: usize) -> EventTracer {
        EventTracer {
            capacity,
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// Record an event; drops (and counts) once full.
    pub fn post(&mut self, at: Cycle, tag: u32) {
        if self.events.len() < self.capacity {
            self.events.push((at, tag));
        } else {
            self.dropped += 1;
        }
    }

    /// The collected events in posting order.
    pub fn events(&self) -> &[(Cycle, u32)] {
        &self.events
    }

    /// Events dropped after the tracer filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The maximum number of events this tracer can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append another tracer's events (and its dropped count) to this
    /// one, respecting this tracer's capacity. The parallel engine merges
    /// per-shard cycle buffers in cluster order through this; because a
    /// shard buffer only overflows once the merged trace would have
    /// overflowed too, the merged result matches a single serial tracer
    /// exactly.
    pub fn absorb(&mut self, other: &EventTracer) {
        for &(at, tag) in other.events() {
            self.post(at, tag);
        }
        self.dropped += other.dropped();
    }

    /// Clear the trace for a new experiment.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.seq(self.events.iter(), |w, (at, tag)| {
            w.cycle(*at);
            w.u32(*tag);
        });
        w.u64(self.dropped);
    }

    /// Restore events and the drop count; capacity stays whatever this
    /// tracer was constructed with (it is configuration, not state).
    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        self.events = r.seq(|r| Ok((r.cycle()?, r.u32()?)))?;
        self.dropped = r.u64()?;
        Ok(())
    }
}

impl Default for EventTracer {
    fn default() -> Self {
        Self::new()
    }
}

/// A histogramming counter array with saturating 32-bit bins; samples
/// beyond the last bin land in it (a catch-all overflow bin, as when the
/// hardware is programmed with a final open bucket).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogrammer {
    bins: Vec<u32>,
}

impl Histogrammer {
    /// A histogrammer with the hardware's 64 K counters.
    pub fn new() -> Histogrammer {
        Self::with_bins(HISTOGRAM_BINS)
    }

    /// A histogrammer with a custom number of bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero.
    pub fn with_bins(bins: usize) -> Histogrammer {
        assert!(bins > 0, "histogrammer needs at least one bin");
        Histogrammer {
            bins: vec![0; bins],
        }
    }

    /// Count a sample at `value` (clamped into the last bin).
    pub fn record(&mut self, value: usize) {
        let i = value.min(self.bins.len() - 1);
        self.bins[i] = self.bins[i].saturating_add(1);
    }

    /// Bin-wise accumulate another histogram into this one (saturating,
    /// like [`Histogrammer::record`]). `other`'s overflow of this
    /// histogram's bin range is folded into the last bin.
    pub fn merge(&mut self, other: &Histogrammer) {
        let last = self.bins.len() - 1;
        for (i, &n) in other.bins.iter().enumerate() {
            let j = i.min(last);
            self.bins[j] = self.bins[j].saturating_add(n);
        }
    }

    /// The raw bins.
    pub fn bins(&self) -> &[u32] {
        &self.bins
    }

    /// Total samples recorded (saturating bins may undercount).
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|&b| u64::from(b)).sum()
    }

    /// Mean of the recorded distribution, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .bins
            .iter()
            .enumerate()
            .map(|(i, &b)| i as u64 * u64::from(b))
            .sum();
        sum as f64 / total as f64
    }

    /// The value below which fraction `p` (in `0.0..=1.0`) of the samples
    /// fall: the smallest bin index whose cumulative count reaches
    /// `ceil(p * total)`. Returns `None` when the histogram is empty —
    /// an empty distribution has no percentiles, and conflating "no
    /// samples" with "all samples at 0" misread idle probes as
    /// zero-latency ones.
    ///
    /// # Examples
    ///
    /// ```
    /// use cedar_machine::monitor::Histogrammer;
    /// let mut h = Histogrammer::with_bins(16);
    /// assert_eq!(h.percentile(0.5), None);
    /// for v in [1, 1, 2, 3, 10] {
    ///     h.record(v);
    /// }
    /// assert_eq!(h.percentile(0.5), Some(2));
    /// assert_eq!(h.percentile(1.0), Some(10));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=1.0`.
    pub fn percentile(&self, p: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&p), "percentile wants p in 0..=1");
        let total = self.total();
        if total == 0 {
            return None;
        }
        let rank = ((p * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.bins.iter().enumerate() {
            seen += u64::from(b);
            if seen >= rank {
                return Some(i);
            }
        }
        Some(self.bins.len() - 1)
    }

    /// Bin-wise difference `self - earlier` (saturating at zero), sized to
    /// the larger of the two histograms. Used by the stats layer's
    /// snapshot/delta API to bracket a measurement region.
    pub fn delta_since(&self, earlier: &Histogrammer) -> Histogrammer {
        let len = self.bins.len().max(earlier.bins.len());
        let mut bins = vec![0u32; len];
        for (i, b) in bins.iter_mut().enumerate() {
            let new = self.bins.get(i).copied().unwrap_or(0);
            let old = earlier.bins.get(i).copied().unwrap_or(0);
            *b = new.saturating_sub(old);
        }
        Histogrammer { bins }
    }

    /// Clear all bins.
    pub fn clear(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
    }

    /// Sparse snapshot encoding: bin count, then `(index, count)` pairs
    /// for the non-zero bins. Most of the machine's histograms are 64 K
    /// bins with a handful occupied; dense encoding would dominate the
    /// snapshot.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.usize(self.bins.len());
        let nonzero: Vec<(usize, u32)> = self
            .bins
            .iter()
            .enumerate()
            .filter(|(_, &b)| b != 0)
            .map(|(i, &b)| (i, b))
            .collect();
        w.seq(nonzero.iter(), |w, (i, b)| {
            w.u32(*i as u32);
            w.u32(*b);
        });
    }

    /// Decode a histogram written by [`Histogrammer::save_state`].
    pub(crate) fn decode(r: &mut SnapReader) -> SnapResult<Histogrammer> {
        let len = r.len()?;
        if len == 0 {
            return Err(r.err_invalid("histogram bin count", 0));
        }
        let mut h = Histogrammer::with_bins(len);
        let pairs = r.seq(|r| Ok((r.u32()?, r.u32()?)))?;
        for (i, b) in pairs {
            *h.bins
                .get_mut(i as usize)
                .ok_or_else(|| r.err_invalid("histogram bin index", 0))? = b;
        }
        Ok(h)
    }
}

impl Default for Histogrammer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracer_records_until_full() {
        let mut t = EventTracer::with_capacity(3);
        for i in 0..5 {
            t.post(Cycle(i), i as u32);
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 2);
        t.clear();
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    /// Replaying the same post stream through per-shard buffers merged
    /// with `absorb` in shard order must reproduce the serial tracer
    /// byte for byte — events AND the dropped count — including when the
    /// merged trace overflows mid-absorb. This pins the invariant the
    /// parallel engine's exchange phase relies on, at shard counts
    /// matching the 1/2/4-thread configurations.
    #[test]
    fn chunked_absorb_matches_serial_posting() {
        // 25 events over 5 "cycles", capacity 13: overflow lands inside
        // the middle shard's absorb, not on a chunk boundary.
        let stream: Vec<(Cycle, u32)> = (0..25).map(|i| (Cycle(i / 5), i as u32)).collect();
        let cap = 13;

        let mut serial = EventTracer::with_capacity(cap);
        for &(at, tag) in &stream {
            serial.post(at, tag);
        }

        for shards in [1usize, 2, 4] {
            let mut merged = EventTracer::with_capacity(cap);
            // Per cycle, split that cycle's events contiguously across
            // shards and absorb the shard buffers in order — the exchange
            // phase's merge discipline.
            for cycle in 0..5 {
                let in_cycle: Vec<_> = stream.iter().filter(|&&(at, _)| at.0 == cycle).collect();
                let per = in_cycle.len().div_ceil(shards);
                for chunk in in_cycle.chunks(per.max(1)) {
                    let mut shard = EventTracer::with_capacity(cap);
                    for &&(at, tag) in chunk {
                        shard.post(at, tag);
                    }
                    merged.absorb(&shard);
                }
            }
            assert_eq!(merged.events(), serial.events(), "{shards} shards");
            assert_eq!(merged.dropped(), serial.dropped(), "{shards} shards");
        }
    }

    #[test]
    fn histogram_mean_and_overflow() {
        let mut h = Histogrammer::with_bins(4);
        h.record(0);
        h.record(2);
        h.record(100); // clamps to bin 3
        assert_eq!(h.total(), 3);
        assert!((h.mean() - (0.0 + 2.0 + 3.0) / 3.0).abs() < 1e-12);
        h.clear();
        assert_eq!(h.total(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn default_sizes_match_hardware() {
        assert_eq!(EventTracer::new().capacity(), TRACER_CAPACITY);
        assert_eq!(Histogrammer::new().bins().len(), HISTOGRAM_BINS);
    }

    #[test]
    fn custom_capacity_is_reported() {
        assert_eq!(EventTracer::with_capacity(17).capacity(), 17);
    }

    #[test]
    fn percentiles_walk_the_cumulative_distribution() {
        let mut h = Histogrammer::with_bins(128);
        // 100 samples: values 0..100, one each.
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.5), Some(49));
        assert_eq!(h.percentile(0.95), Some(94));
        assert_eq!(h.percentile(0.99), Some(98));
        assert_eq!(h.percentile(1.0), Some(99));
        assert_eq!(h.percentile(0.0), Some(0));
    }

    #[test]
    fn percentile_of_empty_histogram_is_none() {
        // Regression: this used to report bin 0, indistinguishable from
        // a real all-zero-latency distribution.
        let h = Histogrammer::with_bins(8);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(0.99), None);
        assert_eq!(h.percentile(1.0), None);
    }

    #[test]
    fn percentile_returns_some_once_a_sample_lands() {
        let mut h = Histogrammer::with_bins(8);
        assert_eq!(h.percentile(0.5), None);
        h.record(0);
        assert_eq!(h.percentile(0.5), Some(0));
        h.clear();
        assert_eq!(h.percentile(0.5), None, "clear() empties the histogram");
    }

    #[test]
    fn percentile_with_mass_in_one_bin() {
        let mut h = Histogrammer::with_bins(8);
        for _ in 0..10 {
            h.record(3);
        }
        assert_eq!(h.percentile(0.5), Some(3));
        assert_eq!(h.percentile(0.99), Some(3));
    }
}

//! The per-CE data prefetch unit (PFU).
//!
//! The PFU masks Cedar's long global-memory latency and overcomes the
//! two-outstanding-request limit of the Alliant CE. It is *armed* with the
//! length, stride and mask of the vector to fetch and then *fired* with the
//! physical address of the first word. In the absence of page crossings it
//! issues up to 512 requests without pausing; because it only holds
//! physical addresses it must suspend at 4 KB page boundaries until the
//! processor supplies the next page's first address. Data returns — possibly
//! out of order under memory and network conflicts — to a 512-word buffer
//! whose full/empty bits let the CE consume it in request order without
//! waiting for the whole prefetch (§2 "Data Prefetch").

use crate::config::PrefetchConfig;
use crate::ids::CeId;
use crate::memory::address::{crosses_page, module_of};
use crate::network::packet::{MemRequest, Packet, RequestKind, Stream};
use crate::network::InjectPort;
use crate::time::Cycle;
use crate::trace::{hop, sample_prefetch, PfuTrace, TraceEvent};

/// Aggregated prefetch measurements for one CE — the quantities the
/// paper's hardware performance monitor records for Table 2.
///
/// *First-word latency* is measured from the cycle an address issues into
/// the forward network to the cycle the first datum returns to the buffer;
/// *interarrival time* is the spacing between the remaining words of the
/// block. Minimal values on the paper's machine: 8 cycles and 1 cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Completed prefetch blocks (fires with at least one word returned).
    pub fires: u64,
    /// Requests issued into the network.
    pub requests: u64,
    /// Words returned to the buffer.
    pub words_returned: u64,
    /// Sum over fires of (first word arrival − fire issue).
    pub first_word_latency_sum: u64,
    /// Sum over fires of (last arrival − first arrival).
    pub arrival_span_sum: u64,
    /// Sum over fires of (words − 1), the interarrival sample count.
    pub interarrival_samples: u64,
    /// Cycles the PFU sat suspended at page boundaries.
    pub page_suspend_cycles: u64,
    /// Cycles the PFU had a request ready but the network port refused it.
    pub inject_stall_cycles: u64,
    /// Stale words dropped because a new fire invalidated the buffer.
    pub stale_words: u64,
    /// Requests re-issued after the fault-recovery timeout expired with
    /// words of the current fire still missing (fault injection only).
    pub retries: u64,
}

impl PrefetchStats {
    /// Mean first-word latency in cycles, or 0 when no blocks completed.
    pub fn mean_latency(&self) -> f64 {
        if self.fires == 0 {
            0.0
        } else {
            self.first_word_latency_sum as f64 / self.fires as f64
        }
    }

    /// Mean interarrival time between block words in cycles.
    pub fn mean_interarrival(&self) -> f64 {
        if self.interarrival_samples == 0 {
            0.0
        } else {
            self.arrival_span_sum as f64 / self.interarrival_samples as f64
        }
    }

    /// Merge another CE's samples into this aggregate.
    pub fn merge(&mut self, other: &PrefetchStats) {
        self.fires += other.fires;
        self.requests += other.requests;
        self.words_returned += other.words_returned;
        self.first_word_latency_sum += other.first_word_latency_sum;
        self.arrival_span_sum += other.arrival_span_sum;
        self.interarrival_samples += other.interarrival_samples;
        self.page_suspend_cycles += other.page_suspend_cycles;
        self.inject_stall_cycles += other.inject_stall_cycles;
        self.stale_words += other.stale_words;
        self.retries += other.retries;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Armed {
    length: u32,
    stride: i64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueState {
    /// Nothing to issue.
    Idle,
    /// Issuing element `next` of the current fire.
    Issuing { next: u32 },
    /// Suspended at a page crossing; resumes (with the CE-supplied
    /// address) at the given cycle.
    PageWait { next: u32, resume_at: Cycle },
    /// Fault recovery: re-requesting words of the current fire whose
    /// replies were lost, scanning the full/empty bits from `next`.
    Retry { next: u32 },
}

/// Per-fire measurement state.
#[derive(Debug, Clone, Copy, Default)]
struct FireTrace {
    fire_at: Cycle,
    first_arrival: Option<Cycle>,
    last_arrival: Cycle,
    arrivals: u32,
}

/// One CE's data prefetch unit.
#[derive(Debug)]
pub struct Pfu {
    ce: CeId,
    cfg: PrefetchConfig,
    page_words: u64,
    modules: usize,
    armed: Option<Armed>,
    fire_seq: u64,
    base: u64,
    state: IssueState,
    /// Full/empty bits of the prefetch buffer.
    full: Vec<bool>,
    consume_idx: u32,
    /// Element whose page crossing has already been paid for (so the check
    /// does not re-trigger after the suspend).
    crossing_paid: Option<u32>,
    /// Reply-loss recovery timeout in cycles; `None` disables the retry
    /// path entirely (the fault-free machine).
    fault_timeout: Option<u64>,
    /// Words the current fire will deliver (the armed length).
    expected: u32,
    /// Words of the current fire received so far.
    received: u32,
    /// With `fault_timeout`: the deadline at which missing words are
    /// declared lost and re-requested (pushed out by every arrival).
    retry_at: Cycle,
    trace: FireTrace,
    /// Causal-tracing state; present only when journey tracing is enabled.
    jtrace: Option<Box<PfuTrace>>,
    stats: PrefetchStats,
}

impl Pfu {
    /// Build the PFU for CE `ce`. `fault_timeout` arms the reply-loss
    /// recovery path: a fire whose words stop arriving for that many
    /// cycles re-requests the missing elements (same fire sequence, so
    /// in-flight duplicates stay valid).
    pub fn new(
        ce: CeId,
        cfg: &PrefetchConfig,
        page_words: u64,
        modules: usize,
        fault_timeout: Option<u64>,
    ) -> Pfu {
        Pfu {
            ce,
            cfg: cfg.clone(),
            page_words,
            modules,
            armed: None,
            fire_seq: 0,
            base: 0,
            state: IssueState::Idle,
            full: vec![false; cfg.buffer_words as usize],
            consume_idx: 0,
            crossing_paid: None,
            fault_timeout,
            expected: 0,
            received: 0,
            retry_at: Cycle::ZERO,
            trace: FireTrace::default(),
            jtrace: None,
            stats: PrefetchStats::default(),
        }
    }

    /// Arm causal journey tracing: fires are sampled deterministically by
    /// `(seed, ce, fire_seq)`, independent of thread count or fast-forward.
    pub(crate) fn enable_trace(&mut self, seed: u64, sample_ppm: u32) {
        self.jtrace = Some(Box::new(PfuTrace::new(seed, sample_ppm)));
    }

    /// Drain this PFU's trace stamps: `(events, overflow drops)`.
    pub(crate) fn drain_trace(&mut self) -> (Vec<TraceEvent>, u64) {
        match self.jtrace.as_deref_mut() {
            Some(t) => (
                std::mem::take(&mut t.buf.events),
                std::mem::replace(&mut t.buf.dropped, 0),
            ),
            None => (Vec::new(), 0),
        }
    }

    /// Journey id carried by element `elem` of the current fire: the
    /// traced fire's id on its first request, zero everywhere else. The
    /// first word's journey spans the whole burst (fire → last arrival).
    #[inline]
    fn elem_trace(&self, elem: u32) -> u64 {
        match self.jtrace.as_deref() {
            Some(t) if elem == 0 => match t.cur {
                Some((id, fs)) if fs == self.fire_seq => id,
                _ => 0,
            },
            _ => 0,
        }
    }

    /// Arm with the vector shape. Lengths beyond the buffer are clamped —
    /// the compiler never emits them on the real machine.
    pub fn arm(&mut self, length: u32, stride: i64) {
        let length = length.min(self.cfg.buffer_words).min(self.cfg.max_burst);
        self.armed = Some(Armed { length, stride });
    }

    /// Fire at physical word address `base`. Invalidates the buffer: any
    /// words still in flight from the previous fire are dropped on return.
    ///
    /// # Panics
    ///
    /// Panics if the PFU was never armed.
    pub fn fire(&mut self, now: Cycle, base: u64) {
        assert!(self.armed.is_some(), "PFU fired without being armed");
        self.finish_trace();
        self.fire_seq += 1;
        self.base = base;
        self.full.iter_mut().for_each(|b| *b = false);
        self.consume_idx = 0;
        self.crossing_paid = None;
        self.expected = self.armed.expect("checked above").length;
        self.received = 0;
        self.retry_at = now + self.fault_timeout.unwrap_or(0);
        self.state = IssueState::Issuing { next: 0 };
        self.trace = FireTrace {
            fire_at: now,
            ..FireTrace::default()
        };
        let ce = self.ce.0 as u16;
        let seq = self.fire_seq;
        if let Some(t) = self.jtrace.as_deref_mut() {
            t.cur = None;
            if let Some(id) = sample_prefetch(t.seed, t.ppm, ce, seq) {
                t.buf.stamp(id, hop::PF_FIRE, 0, ce, now);
                t.cur = Some((id, seq));
            }
        }
    }

    /// Rewind consumption to reuse buffered data (the paper notes
    /// prefetched data can be kept in the buffer and reused).
    pub fn rewind(&mut self) {
        self.consume_idx = 0;
    }

    /// True when the current fire has issued every request.
    pub fn done_issuing(&self) -> bool {
        matches!(self.state, IssueState::Idle)
    }

    /// Try to consume the next word in request order. Returns `true` and
    /// advances when the word's full bit is set.
    pub fn try_consume(&mut self) -> bool {
        let idx = self.consume_idx as usize;
        if idx < self.full.len() && self.full[idx] {
            self.consume_idx += 1;
            true
        } else {
            false
        }
    }

    /// Handle a returning word from the reverse network.
    pub fn receive(&mut self, now: Cycle, elem: u32, fire_seq: u64) {
        if fire_seq != self.fire_seq {
            self.stats.stale_words += 1;
            return;
        }
        if let Some(slot) = self.full.get_mut(elem as usize) {
            if !*slot {
                *slot = true;
                self.stats.words_returned += 1;
                self.received += 1;
                // Progress: push the loss deadline out past this arrival.
                if let Some(t) = self.fault_timeout {
                    self.retry_at = now + t;
                }
                self.trace.arrivals += 1;
                if self.trace.first_arrival.is_none() {
                    self.trace.first_arrival = Some(now);
                }
                self.trace.last_arrival = now;
                // The traced fire's journey closes when its last word lands.
                if self.received == self.expected {
                    let ce = self.ce.0 as u16;
                    if let Some(t) = self.jtrace.as_deref_mut() {
                        if let Some((id, fs)) = t.cur {
                            if fs == fire_seq {
                                t.buf.stamp(id, hop::PF_DONE, 0, ce, now);
                            }
                        }
                    }
                }
            }
        }
    }

    /// True when the fault-recovery path is armed and the current fire is
    /// still missing words — the PFU must stay awake to re-request them.
    fn retry_pending(&self) -> bool {
        self.fault_timeout.is_some() && self.expected > 0 && self.received < self.expected
    }

    /// True when [`Pfu::try_consume`] would succeed (non-consuming).
    pub(crate) fn can_consume(&self) -> bool {
        let idx = self.consume_idx as usize;
        idx < self.full.len() && self.full[idx]
    }

    /// True when the issue engine has nothing to do — [`Pfu::tick`] would
    /// be a no-op, so the caller can skip the (non-inlined) call entirely.
    #[inline]
    pub(crate) fn issue_idle(&self) -> bool {
        matches!(self.state, IssueState::Idle) && !self.retry_pending()
    }

    /// The earliest future cycle at which this PFU can change externally
    /// visible state: issuing wants every cycle, a page suspend wakes at
    /// its resume cycle, idle means never.
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        match self.state {
            IssueState::Idle if self.retry_pending() => Some(self.retry_at.max(now + 1)),
            IssueState::Idle => None,
            IssueState::Issuing { .. } | IssueState::Retry { .. } => Some(now + 1),
            IssueState::PageWait { resume_at, .. } => Some(resume_at.max(now + 1)),
        }
    }

    /// Credit `cycles` skipped quiescent cycles: a page-suspended PFU
    /// counts one suspend cycle per tick (as the per-cycle path does);
    /// idle costs nothing, and an issuing PFU is never skipped over.
    pub(crate) fn skip(&mut self, cycles: u64) {
        if matches!(self.state, IssueState::PageWait { .. }) {
            self.stats.page_suspend_cycles += cycles;
        }
    }

    /// Advance one cycle: issue up to `issue_per_cycle` requests into the
    /// CE's forward-network port.
    pub fn tick(&mut self, now: Cycle, port: usize, forward: &mut dyn InjectPort) {
        for _ in 0..self.cfg.issue_per_cycle {
            match self.state {
                IssueState::Idle => {
                    if self.retry_pending() && now >= self.retry_at {
                        self.state = IssueState::Retry { next: 0 };
                    } else {
                        return;
                    }
                }
                IssueState::PageWait { next, resume_at } => {
                    if now >= resume_at {
                        self.state = IssueState::Issuing { next };
                    } else {
                        self.stats.page_suspend_cycles += 1;
                        return;
                    }
                }
                IssueState::Issuing { .. } | IssueState::Retry { .. } => {}
            }
            if let IssueState::Retry { next } = self.state {
                if !self.retry_scan(now, next, port, forward) {
                    return;
                }
                continue;
            }
            let IssueState::Issuing { next } = self.state else {
                return;
            };
            let armed = self.armed.expect("issuing implies armed");
            if next >= armed.length {
                self.state = IssueState::Idle;
                return;
            }
            let addr = self.elem_addr(next, armed.stride);
            // Page-crossing check against the previous element's page.
            if self.cfg.page_suspend && next > 0 && self.crossing_paid != Some(next) {
                let prev = self.elem_addr(next - 1, armed.stride);
                if crosses_page(prev, addr, self.page_words) {
                    self.crossing_paid = Some(next);
                    self.state = IssueState::PageWait {
                        next,
                        resume_at: now + u64::from(self.cfg.page_resume_cycles),
                    };
                    // Model the CE supplying the next address after the
                    // resume delay; the issue itself happens then.
                    self.stats.page_suspend_cycles += 1;
                    return;
                }
            }
            let pkt = Packet::read_request(
                module_of(addr, self.modules).0,
                MemRequest {
                    ce: self.ce,
                    kind: RequestKind::Read,
                    addr,
                    stream: Stream::Prefetch {
                        elem: next,
                        fire_seq: self.fire_seq,
                    },
                    issued: now,
                    seq: 0,
                    nacked: false,
                    trace: self.elem_trace(next),
                },
            );
            if forward.try_inject(port, pkt) {
                self.stats.requests += 1;
                self.state = IssueState::Issuing { next: next + 1 };
            } else {
                self.stats.inject_stall_cycles += 1;
                return;
            }
        }
    }

    /// Aggregated statistics; call [`Pfu::flush_trace`] first to include the
    /// final in-progress block.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Fold the current fire's trace into the statistics (done
    /// automatically on the next fire).
    pub fn flush_trace(&mut self) {
        self.finish_trace();
    }

    /// One step of the fault-recovery scan: re-request the first word at
    /// index `>= next` whose full bit is still clear, under the *same*
    /// fire sequence (in-flight duplicates of earlier requests then land
    /// harmlessly in the already-full slot). Returns `false` when the
    /// caller's issue loop should stop for this cycle.
    fn retry_scan(
        &mut self,
        now: Cycle,
        next: u32,
        port: usize,
        forward: &mut dyn InjectPort,
    ) -> bool {
        let armed = self.armed.expect("retry implies armed");
        let mut i = next;
        while i < self.expected {
            if !self.full[i as usize] {
                let addr = self.elem_addr(i, armed.stride);
                let pkt = Packet::read_request(
                    module_of(addr, self.modules).0,
                    MemRequest {
                        ce: self.ce,
                        kind: RequestKind::Read,
                        addr,
                        stream: Stream::Prefetch {
                            elem: i,
                            fire_seq: self.fire_seq,
                        },
                        issued: now,
                        seq: 0,
                        nacked: false,
                        trace: self.elem_trace(i),
                    },
                );
                if forward.try_inject(port, pkt) {
                    self.stats.requests += 1;
                    self.stats.retries += 1;
                    self.state = IssueState::Retry { next: i + 1 };
                    return true;
                }
                self.stats.inject_stall_cycles += 1;
                return false;
            }
            i += 1;
        }
        // Every missing word has been re-requested; give the duplicates a
        // full timeout window to come home before scanning again.
        self.state = IssueState::Idle;
        self.retry_at = now + self.fault_timeout.unwrap_or(0);
        false
    }

    fn elem_addr(&self, elem: u32, stride: i64) -> u64 {
        (self.base as i64 + i64::from(elem) * stride) as u64
    }

    /// Serialize the armed shape, fire bookkeeping, issue state,
    /// full/empty bits (as set indices — the buffer is mostly empty or
    /// mostly full, and 512 bools beat 512 bytes either way), and stats.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.opt(self.armed.as_ref(), |w, a| {
            w.u32(a.length);
            w.i64(a.stride);
        });
        w.u64(self.fire_seq);
        w.u64(self.base);
        let (state, next, resume) = match self.state {
            IssueState::Idle => (0u8, 0u32, Cycle::ZERO),
            IssueState::Issuing { next } => (1, next, Cycle::ZERO),
            IssueState::PageWait { next, resume_at } => (2, next, resume_at),
            IssueState::Retry { next } => (3, next, Cycle::ZERO),
        };
        w.u8(state);
        w.u32(next);
        w.cycle(resume);
        let full: Vec<u32> = (0..self.full.len() as u32)
            .filter(|&i| self.full[i as usize])
            .collect();
        w.seq(full.iter(), |w, i| w.u32(*i));
        w.u32(self.consume_idx);
        w.opt(self.crossing_paid.as_ref(), |w, e| w.u32(*e));
        w.u32(self.expected);
        w.u32(self.received);
        w.cycle(self.retry_at);
        w.cycle(self.trace.fire_at);
        w.opt(self.trace.first_arrival.as_ref(), |w, c| w.cycle(*c));
        w.cycle(self.trace.last_arrival);
        w.u32(self.trace.arrivals);
        w.opt(self.jtrace.as_deref(), |w, t| t.save_state(w));
        let s = &self.stats;
        for v in [
            s.fires,
            s.requests,
            s.words_returned,
            s.first_word_latency_sum,
            s.arrival_span_sum,
            s.interarrival_samples,
            s.page_suspend_cycles,
            s.inject_stall_cycles,
            s.stale_words,
            s.retries,
        ] {
            w.u64(v);
        }
    }

    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader,
    ) -> crate::snapshot::SnapResult<()> {
        self.armed = r.opt(|r| {
            Ok(Armed {
                length: r.u32()?,
                stride: r.i64()?,
            })
        })?;
        self.fire_seq = r.u64()?;
        self.base = r.u64()?;
        let state = r.u8()?;
        let next = r.u32()?;
        let resume_at = r.cycle()?;
        self.state = match state {
            0 => IssueState::Idle,
            1 => IssueState::Issuing { next },
            2 => IssueState::PageWait { next, resume_at },
            3 => IssueState::Retry { next },
            b => return Err(r.err_invalid("pfu issue state", b)),
        };
        self.full.iter_mut().for_each(|b| *b = false);
        for i in r.seq(|r| r.u32())? {
            match self.full.get_mut(i as usize) {
                Some(slot) => *slot = true,
                None => {
                    return Err(r.err_mismatch(&format!(
                        "prefetch full bit {i} outside the {}-word buffer",
                        self.full.len()
                    )))
                }
            }
        }
        self.consume_idx = r.u32()?;
        self.crossing_paid = r.opt(|r| r.u32())?;
        self.expected = r.u32()?;
        self.received = r.u32()?;
        self.retry_at = r.cycle()?;
        self.trace = FireTrace {
            fire_at: r.cycle()?,
            first_arrival: r.opt(|r| r.cycle())?,
            last_arrival: r.cycle()?,
            arrivals: r.u32()?,
        };
        let had_jtrace = r.bool()?;
        if had_jtrace {
            match self.jtrace.as_deref_mut() {
                Some(t) => t.load_state(r)?,
                None => {
                    return Err(r.err_mismatch(
                        "snapshot carries prefetch journey tracing but this machine has none",
                    ))
                }
            }
        }
        self.stats = PrefetchStats {
            fires: r.u64()?,
            requests: r.u64()?,
            words_returned: r.u64()?,
            first_word_latency_sum: r.u64()?,
            arrival_span_sum: r.u64()?,
            interarrival_samples: r.u64()?,
            page_suspend_cycles: r.u64()?,
            inject_stall_cycles: r.u64()?,
            stale_words: r.u64()?,
            retries: r.u64()?,
        };
        Ok(())
    }

    fn finish_trace(&mut self) {
        let t = self.trace;
        if let Some(first) = t.first_arrival {
            self.stats.fires += 1;
            self.stats.first_word_latency_sum += first.saturating_since(t.fire_at);
            self.stats.arrival_span_sum += t.last_arrival.saturating_since(first);
            self.stats.interarrival_samples += u64::from(t.arrivals.saturating_sub(1));
        }
        self.trace = FireTrace::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use crate::network::packet::Payload;
    use crate::network::{NetSink, Omega};

    #[derive(Default)]
    struct Collect {
        got: Vec<(usize, Packet)>,
    }
    impl NetSink for Collect {
        fn try_begin(&mut self, _p: usize) -> bool {
            true
        }
        fn deliver(&mut self, p: usize, pkt: Packet) {
            self.got.push((p, pkt));
        }
    }

    fn pfu() -> Pfu {
        Pfu::new(CeId(0), &PrefetchConfig::cedar(), 512, 32, None)
    }

    #[test]
    #[should_panic(expected = "without being armed")]
    fn fire_requires_arm() {
        pfu().fire(Cycle(0), 0);
    }

    #[test]
    fn issues_strided_requests_in_order() {
        let mut p = pfu();
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        p.arm(4, 2);
        p.fire(Cycle(0), 10);
        let mut c = 0u64;
        while !p.done_issuing() || !net.is_idle() {
            p.tick(Cycle(c), 0, &mut net);
            net.tick(&mut sink);
            c += 1;
            assert!(c < 100);
        }
        let addrs: Vec<u64> = sink
            .got
            .iter()
            .map(|(_, pkt)| match pkt.payload {
                Payload::Request(r) => r.addr,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![10, 12, 14, 16]);
        assert_eq!(p.stats().requests, 4);
    }

    #[test]
    fn consume_respects_full_empty_bits_in_request_order() {
        let mut p = pfu();
        p.arm(3, 1);
        p.fire(Cycle(0), 0);
        assert!(!p.try_consume());
        // Word 1 arrives before word 0 (out of order): still not consumable.
        p.receive(Cycle(5), 1, 1);
        assert!(!p.try_consume());
        p.receive(Cycle(6), 0, 1);
        assert!(p.try_consume());
        assert!(p.try_consume());
        assert!(!p.try_consume());
        p.receive(Cycle(7), 2, 1);
        assert!(p.try_consume());
    }

    #[test]
    fn stale_words_from_previous_fire_are_dropped() {
        let mut p = pfu();
        p.arm(2, 1);
        p.fire(Cycle(0), 0);
        p.fire(Cycle(1), 100); // invalidates
        p.receive(Cycle(5), 0, 1); // from the first fire
        assert!(!p.try_consume());
        assert_eq!(p.stats().stale_words, 1);
        p.receive(Cycle(6), 0, 2);
        assert!(p.try_consume());
    }

    #[test]
    fn page_crossing_suspends_and_resumes() {
        let mut p = pfu();
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        // Stride 1 starting 2 words before a page boundary: crossing after
        // 2 issues.
        p.arm(4, 1);
        p.fire(Cycle(0), 510);
        let mut c = 0u64;
        while !p.done_issuing() {
            p.tick(Cycle(c), 0, &mut net);
            net.tick(&mut sink);
            c += 1;
            assert!(c < 100);
        }
        assert!(p.stats().page_suspend_cycles > 0);
        assert_eq!(p.stats().requests, 4);
    }

    #[test]
    fn monitor_aggregates_latency_and_interarrival() {
        let mut p = pfu();
        p.arm(4, 1);
        p.fire(Cycle(10), 0);
        p.receive(Cycle(18), 0, 1);
        p.receive(Cycle(19), 1, 1);
        p.receive(Cycle(20), 2, 1);
        p.receive(Cycle(21), 3, 1);
        p.flush_trace();
        let s = p.stats();
        assert_eq!(s.fires, 1);
        assert!((s.mean_latency() - 8.0).abs() < 1e-9);
        assert!((s.mean_interarrival() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rewind_reuses_buffer() {
        let mut p = pfu();
        p.arm(2, 1);
        p.fire(Cycle(0), 0);
        p.receive(Cycle(1), 0, 1);
        p.receive(Cycle(1), 1, 1);
        assert!(p.try_consume() && p.try_consume());
        assert!(!p.try_consume());
        p.rewind();
        assert!(p.try_consume() && p.try_consume());
    }

    #[test]
    fn lost_reply_is_rerequested_after_timeout() {
        let mut p = Pfu::new(CeId(0), &PrefetchConfig::cedar(), 512, 32, Some(16));
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        p.arm(2, 1);
        p.fire(Cycle(0), 0);
        let mut c = 0u64;
        while !p.done_issuing() || !net.is_idle() {
            p.tick(Cycle(c), 0, &mut net);
            net.tick(&mut sink);
            c += 1;
            assert!(c < 100);
        }
        assert_eq!(p.stats().requests, 2);
        // Word 0 arrives; word 1's reply was lost in the network.
        p.receive(Cycle(c), 0, 1);
        assert!(!p.issue_idle(), "missing word keeps the PFU awake");
        // Past the timeout the PFU re-requests element 1 — and only it.
        // (24 cycles covers one timeout window plus network transit but
        // not a second scan, so exactly one retry is observed.)
        for _ in 0..24 {
            p.tick(Cycle(c), 0, &mut net);
            net.tick(&mut sink);
            c += 1;
        }
        assert_eq!(p.stats().retries, 1);
        assert_eq!(p.stats().requests, 3);
        let (_, last) = *sink.got.last().unwrap();
        match last.payload {
            Payload::Request(r) => {
                assert_eq!(
                    r.stream,
                    Stream::Prefetch {
                        elem: 1,
                        fire_seq: 1
                    }
                );
            }
            Payload::Reply(_) => unreachable!(),
        }
        // The duplicate lands; the fire completes and the PFU goes quiet.
        p.receive(Cycle(c), 1, 1);
        assert!(p.issue_idle());
        assert!(p.next_event(Cycle(c)).is_none());
    }

    #[test]
    fn arm_clamps_to_buffer_capacity() {
        let mut p = pfu();
        p.arm(10_000, 1);
        p.fire(Cycle(0), 0);
        // Issue everything with an infinite-capacity sink.
        let mut net = Omega::new(32, &NetworkConfig::cedar());
        let mut sink = Collect::default();
        let mut c = 0u64;
        while !p.done_issuing() {
            p.tick(Cycle(c), 0, &mut net);
            net.tick(&mut sink);
            c += 1;
            assert!(c < 20_000);
        }
        assert_eq!(p.stats().requests, 512);
    }
}

//! The Cedar global interconnection networks.
//!
//! Two independent unidirectional omega networks connect the 32 CEs to the
//! 32 global-memory modules: the *forward* network carries requests, the
//! *reverse* network carries replies. See [`omega::Omega`] for the switch
//! model and [`packet::Packet`] for the packet format.

pub mod omega;
pub mod packet;

pub use omega::{InjectPort, NetSink, NetStats, Omega};
pub use packet::{MemReply, MemRequest, Packet, Payload, RequestKind, Stream};

//! The multistage shuffle-exchange (omega) network.
//!
//! Cedar's two unidirectional global networks are built from 8×8 crossbar
//! switches with 64-bit-wide data paths, two-word queues on each switch
//! port, flow control between stages to prevent queue overflow, and
//! self-routing based on destination tags (Lawrie's scheme, \[Lawr75\]).
//!
//! The simulator models the network at word granularity with wormhole
//! (cut-through) flow: the head word of a packet claims an input→output
//! pairing at each switch and the remaining words follow contiguously, so
//! a blocked packet holds resources behind it — the mechanism behind the
//! tree-saturation the paper observes at 3–4 clusters (Table 2). Routing
//! tags consume one base-`radix` digit of the destination per stage.
//!
//! Geometry: a radix-`r`, `s`-stage omega connects `r^s` lines; Cedar's
//! 32 active ports live in the 64-line 2-stage radix-8 instance. Line
//! numbering follows the standard construction: a perfect shuffle
//! (rotate-left of base-`r` digits) precedes every stage, and switch `j`
//! of a stage owns lines `j*r .. j*r+r`.

use crate::config::NetworkConfig;
use crate::monitor::Histogrammer;
use crate::network::packet::{Packet, Payload};
use crate::time::Cycle;
use crate::trace::{NetTrace, TraceEvent};

/// Index of a packet in the in-flight slab.
type PacketId = u32;

/// Sentinel for "no entry" in the slab free list.
const NO_PACKET: PacketId = PacketId::MAX;

/// Sentinel in [`Omega::front_out`] for a line with an empty queue.
const NO_FRONT: u8 = u8::MAX;

/// Sentinel in [`Omega::locks`] for an unlocked output.
const NO_LOCK: u32 = u32::MAX;

/// One 64-bit word in flight.
#[derive(Debug, Clone, Copy, Default)]
struct Flit {
    pkt: PacketId,
    is_head: bool,
    is_tail: bool,
    /// For head words: the output subport at the stage this word currently
    /// queues at (precomputed so arbitration needs no packet lookup).
    route: u8,
}

/// Where producers push packets. Implemented directly by [`Omega`] (the
/// single-threaded engine injects straight into the network) and by the
/// parallel engine's per-port staging buffers, which record injections
/// during the sharded cluster phase and replay them against the real
/// network at the barrier, in deterministic port order.
pub trait InjectPort {
    /// Offer a packet for injection at `port`; `false` means the port is
    /// backpressured this cycle and the caller must retry later.
    fn try_inject(&mut self, port: usize, packet: Packet) -> bool;
}

impl InjectPort for Omega {
    fn try_inject(&mut self, port: usize, packet: Packet) -> bool {
        Omega::try_inject(self, port, packet)
    }
}

/// Trace id and issuing CE carried in a packet's payload.
#[inline]
fn pkt_trace(p: &Packet) -> (u64, u16) {
    match &p.payload {
        Payload::Request(r) => (r.trace, r.ce.0 as u16),
        Payload::Reply(r) => (r.trace, r.ce.0 as u16),
    }
}

/// Where delivered packets go. Implemented by the global-memory side (for
/// the forward network) and the CE side (for the reverse network).
pub trait NetSink {
    /// Called when the *head* word of a packet wants to leave the network at
    /// `port`. Return `false` to refuse (backpressure): the packet stays in
    /// the final-stage queue and blocks traffic behind it, exactly like a
    /// full input queue on the real machine. Once a head is accepted the
    /// remaining words of the packet are always accepted.
    fn try_begin(&mut self, port: usize) -> bool;

    /// Called when the tail word of a packet leaves the network: the packet
    /// is fully delivered at `port`.
    fn deliver(&mut self, port: usize, packet: Packet);
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Packets accepted by [`Omega::try_inject`].
    pub packets_injected: u64,
    /// Packets fully delivered to the sink.
    pub packets_delivered: u64,
    /// Words moved across any hop.
    pub words_moved: u64,
    /// Moves that failed because the downstream queue (or sink) had no
    /// space — the flow-control stalls that build tree saturation.
    pub blocked_moves: u64,
    /// Head words that lost output-port arbitration to another packet.
    pub arbitration_losses: u64,
    /// Injections refused because the port's link was scheduled down.
    pub link_blocked: u64,
    /// Packets marked for transient drop at injection; they traverse the
    /// network normally (consuming bandwidth) and evaporate at the final
    /// stage without being delivered.
    pub drops: u64,
    /// Requests marked corrupted at injection; the destination module
    /// NACKs them instead of performing the operation.
    pub nacks: u64,
}

/// Maximum words a stage queue can hold (input + output queue pair). Also
/// fixes the queue-depth histogram's bin count, so it must not change with
/// the configured capacity (exported stat registries pin their shape).
const RING_CAP: usize = 16;

/// Upper bound on switch stages (radix 2 over 64 lines needs 6; the bound
/// sizes the flow path's stack snapshots of the per-stage counters).
const MAX_STAGES: usize = 16;

/// A packet slab slot: either a live in-flight packet or a link in the
/// intrusive free list (LIFO, so ids are reused densely — the same order a
/// separate free stack would give, without the side allocation).
#[derive(Debug, Clone)]
enum Slot {
    Live(Packet),
    Free { next: PacketId },
}

/// Upper bound on per-port injector occupancy (the configured cap is 2;
/// the array is sized with slack so the ring stays branch-trivial). Shared
/// with the parallel engine, whose staging ports mirror the ring.
pub(crate) const INJ_CAP: usize = 4;

/// Per-port packet injector: producers hand over whole packets; the
/// injector streams them into the first stage one word per cycle. A fixed
/// inline ring — per-port heap queues would scatter the hot injection scan
/// across the heap.
#[derive(Debug, Clone, Copy)]
struct Injector {
    slots: [(PacketId, u8); INJ_CAP], // (packet, total words)
    head: u8,
    len: u8,
    words_sent: u8,
}

impl Default for Injector {
    fn default() -> Injector {
        Injector {
            slots: [(NO_PACKET, 0); INJ_CAP],
            head: 0,
            len: 0,
            words_sent: 0,
        }
    }
}

impl Injector {
    #[inline]
    fn len(&self) -> usize {
        usize::from(self.len)
    }

    #[inline]
    fn front(&self) -> Option<(PacketId, u8)> {
        if self.len == 0 {
            None
        } else {
            Some(self.slots[usize::from(self.head)])
        }
    }

    #[inline]
    fn push_back(&mut self, entry: (PacketId, u8)) {
        debug_assert!(self.len() < INJ_CAP, "injector overflow");
        let tail = (usize::from(self.head) + self.len()) % INJ_CAP;
        self.slots[tail] = entry;
        self.len += 1;
    }

    #[inline]
    fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.head = ((usize::from(self.head) + 1) % INJ_CAP) as u8;
        self.len -= 1;
    }
}

/// A chunked bitmask over network lines, iterated in ascending order (the
/// deterministic port order every scan in this module follows).
#[derive(Debug, Clone, Default)]
struct LineMask {
    words: Vec<u64>,
}

impl LineMask {
    fn new(lines: usize) -> LineMask {
        LineMask {
            words: vec![0; lines.div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, line: usize) {
        self.words[line / 64] |= 1 << (line % 64);
    }

    #[inline]
    fn clear(&mut self, line: usize) {
        self.words[line / 64] &= !(1 << (line % 64));
    }

    #[inline]
    fn chunks(&self) -> usize {
        self.words.len()
    }

    #[inline]
    fn chunk(&self, w: usize) -> u64 {
        self.words[w]
    }
}

/// Per-port reassembly of ejected words into packets.
#[derive(Debug, Default)]
struct Assembler {
    accepted: bool, // head word accepted by the sink
}

/// The per-tick charge of a fully-stalled flow-path tick: every queued
/// stream is blocked (a saturated tree, or a sink refusing its heads), so
/// the tick's only effect is a fixed set of stat increments. While the
/// network is untouched from outside and the sink's acceptance epoch is
/// unchanged, each further tick repeats exactly this charge — so the flow
/// path replays it in O(1) instead of re-sweeping every switch.
#[derive(Debug, Clone)]
struct StallCharge {
    /// Sink acceptance epoch the charge was recorded under (see
    /// [`Omega::tick_epoch`]).
    epoch: u64,
    blocked: u64,
    losses: u64,
    stage_blocked: Vec<u64>,
    stage_conflicts: Vec<u64>,
}

/// Fault-injection state for one network instance. Present only when a
/// fault plan with network effects is installed; the fault-free hot path
/// pays a single `Option` check.
#[derive(Debug)]
struct NetFaults {
    seed: u64,
    /// Distinguishes the forward and reverse instances so they draw
    /// independent pseudo-random streams from one machine seed.
    salt: u64,
    drop_ppm: u64,
    nack_ppm: u64,
    /// Monotone per-port count of *accepted* injections — the RNG
    /// sequence number. Both engines accept injections at a port in the
    /// same order (the parallel engine replays staged injections in
    /// deterministic port order), so the stream is engine-invariant.
    inj_seq: Vec<u64>,
    /// Ports currently refusing all injections (scheduled link outages).
    down: Vec<bool>,
    /// Per slab slot: this packet evaporates at the final stage.
    doom: Vec<bool>,
}

/// A unidirectional omega network instance.
#[derive(Debug)]
pub struct Omega {
    radix: usize,
    stages: usize,
    size: usize,
    queue_cap: usize,
    words_per_cycle: u32,
    injector_cap: usize,
    /// Stage-queue flit storage, flattened: the ring of `stage * size +
    /// line` occupies `queue_cap` contiguous slots starting at
    /// `(stage * size + line) * queue_cap`. Sizing rings by the configured
    /// capacity (4 words on Cedar) instead of the [`RING_CAP`] ceiling
    /// keeps the whole queue state inside a few KB of cache; the simulator
    /// ticks these queues hundreds of millions of times.
    qbuf: Vec<Flit>,
    /// Ring head slot per `stage * size + line`.
    qhead: Vec<u8>,
    /// Ring occupancy per `stage * size + line`.
    qlen: Vec<u8>,
    /// `locks[stage * size + out_line]`: input line currently owning this
    /// output, [`NO_LOCK`] when free (flat, like `locked_to` — the
    /// per-stage nesting would cost a pointer chase on every arbitration;
    /// sentinel-coded so arbitration compares plain integers).
    locks: Vec<u32>,
    /// Reverse map: `locked_to[stage * size + in_line]` = output subport the
    /// input's in-flight packet owns (body words route through it),
    /// [`NO_FRONT`] when the input holds no lock.
    locked_to: Vec<u8>,
    /// Round-robin arbitration pointer per `stage * size + out_line`.
    rr: Vec<u8>,
    injectors: Vec<Injector>,
    pending_injections: usize,
    /// Ports whose injectors hold packets (ascending-order scan mask).
    inject_ports: LineMask,
    assemblers: Vec<Assembler>,
    /// In-flight packet slab with an intrusive LIFO free list.
    slab: Vec<Slot>,
    free_head: PacketId,
    in_flight: usize,
    stats: NetStats,
    /// Words currently queued at each stage; lets the tick skip whole
    /// stages with nothing to move.
    stage_words: Vec<u32>,
    /// Words queued per `stage * switches + switch`; lets the per-stage
    /// sweep visit only switches that actually hold words.
    switch_words: Vec<u16>,
    /// Output subport the front word of `stage * size + line` wants
    /// ([`NO_FRONT`] when the queue is empty). A flat byte per line, so a
    /// switch arbitrates from one contiguous read instead of touching
    /// `radix` separate queue rings.
    front_out: Vec<u8>,
    /// `shuffle_tab[line]`: the perfect shuffle of `line`, precomputed so
    /// the per-word hop does no division by the (non-constant) radix.
    shuffle_tab: Vec<u32>,
    /// `route_tab[stage * size + dst]`: routing digit consumed at `stage`
    /// for destination `dst`.
    route_tab: Vec<u8>,
    /// `sw_of[line]`: the switch owning `line` within a stage
    /// (`line / radix`, precomputed).
    sw_of: Vec<u16>,
    /// `sub_of[line]`: the subport of `line` within its switch
    /// (`line % radix`, precomputed — the radix is not a compile-time
    /// constant, so a plain `%` would cost a hardware divide on every
    /// word move).
    sub_of: Vec<u8>,
    /// Per stage, a bitmask of switches holding words (chunked like
    /// [`LineMask`]): `switch_busy[stage * mask_chunks + sw/64]`. The
    /// sweep iterates set bits instead of scanning every switch's count.
    switch_busy: Vec<u64>,
    /// Chunks per stage in [`Omega::switch_busy`].
    mask_chunks: usize,
    /// Arbitration losses per switch stage.
    stage_conflicts: Vec<u64>,
    /// Flow-control blocks per switch stage (injection blocks count
    /// against stage 0, whose queues they contend for).
    stage_blocked: Vec<u64>,
    /// Distribution of stage-queue depths observed after each word push.
    queue_depth: Histogrammer,
    /// Flow-level fast path on (the default): streams advance through the
    /// SWAR sparse sweep and fully-stalled horizons replay their cached
    /// per-tick stall charge in O(1). Off (`CEDAR_NO_FLOWPATH`): the
    /// dense per-flit oracle sweep runs instead. Both produce bit-for-bit
    /// identical state, stats and delivery schedules.
    flow_path: bool,
    /// Cached stall signature of the previous flow-path tick: `Some` when
    /// that tick charged blocks/losses but moved nothing, in which case an
    /// unchanged network replays the same charge without re-sweeping.
    stall: Option<StallCharge>,
    /// Ticks replayed in O(1) from a cached stall charge (monotone).
    stall_replays: u64,
    /// Fault-injection state, `None` on a fault-free network.
    faults: Option<Box<NetFaults>>,
    /// Causal-tracing state, `None` on an untraced network. The machine
    /// sets the cycle stamp before any network activity each ticked cycle
    /// (the network itself has no notion of absolute time).
    trace: Option<Box<NetTrace>>,
}

impl Omega {
    /// Build a network with at least `ports` lines.
    ///
    /// # Panics
    ///
    /// Panics if `ports == 0` or the configuration is invalid
    /// ([`NetworkConfig`] fields of zero).
    pub fn new(ports: usize, cfg: &NetworkConfig) -> Omega {
        assert!(ports > 0, "network must have at least one port");
        assert!(cfg.radix >= 2, "network radix must be at least 2");
        assert!(cfg.queue_words > 0, "switch queues must hold a word");
        let mut size = cfg.radix;
        let mut stages = 1;
        while size < ports {
            size *= cfg.radix;
            stages += 1;
        }
        assert!(
            stages <= MAX_STAGES,
            "networks of {stages} stages unsupported"
        );
        // Input + output queue per port pair; we model the pair as a single
        // per-stage queue of twice the per-queue capacity.
        let queue_cap = cfg.queue_words * 2;
        assert!(
            queue_cap <= RING_CAP,
            "switch queues of {queue_cap} words exceed the supported {RING_CAP}"
        );
        let injector_cap = 2;
        assert!(injector_cap <= INJ_CAP, "injector ring too small");
        let shuffle_tab = (0..size)
            .map(|line| ((line * cfg.radix) % size + (line * cfg.radix) / size) as u32)
            .collect();
        let mut route_tab = vec![0u8; stages * size];
        for stage in 0..stages {
            for dst in 0..size {
                let mut d = dst;
                for _ in 0..(stages - 1 - stage) {
                    d /= cfg.radix;
                }
                route_tab[stage * size + dst] = (d % cfg.radix) as u8;
            }
        }
        let sw_of = (0..size).map(|line| (line / cfg.radix) as u16).collect();
        let sub_of = (0..size).map(|line| (line % cfg.radix) as u8).collect();
        let mask_chunks = (size / cfg.radix).div_ceil(64);
        Omega {
            radix: cfg.radix,
            stages,
            size,
            queue_cap,
            words_per_cycle: cfg.words_per_cycle,
            injector_cap,
            qbuf: vec![Flit::default(); stages * size * queue_cap],
            qhead: vec![0; stages * size],
            qlen: vec![0; stages * size],
            locks: vec![NO_LOCK; stages * size],
            locked_to: vec![NO_FRONT; stages * size],
            rr: vec![0; stages * size],
            injectors: vec![Injector::default(); size],
            pending_injections: 0,
            inject_ports: LineMask::new(size),
            assemblers: (0..size).map(|_| Assembler::default()).collect(),
            slab: Vec::new(),
            free_head: NO_PACKET,
            in_flight: 0,
            stats: NetStats::default(),
            stage_words: vec![0; stages],
            switch_words: vec![0; stages * (size / cfg.radix)],
            front_out: vec![NO_FRONT; stages * size],
            shuffle_tab,
            route_tab,
            sw_of,
            sub_of,
            switch_busy: vec![0; stages * mask_chunks],
            mask_chunks,
            stage_conflicts: vec![0; stages],
            stage_blocked: vec![0; stages],
            queue_depth: Histogrammer::with_bins(RING_CAP + 1),
            flow_path: true,
            stall: None,
            stall_replays: 0,
            faults: None,
            trace: None,
        }
    }

    /// Enable or disable the flow-level fast path (on by default). Off,
    /// every tick runs the dense per-flit oracle sweep. The two paths are
    /// bit-for-bit equivalent; the hatch exists so the equivalence is a
    /// machine-checked invariant, not a hope.
    pub fn set_flow_path(&mut self, on: bool) {
        self.flow_path = on;
        self.stall = None;
    }

    /// Whether the flow-level fast path is enabled.
    pub fn flow_path(&self) -> bool {
        self.flow_path
    }

    /// Ticks replayed in O(1) from a cached stall charge since
    /// construction (zero with the flow path off).
    pub fn stall_replays(&self) -> u64 {
        self.stall_replays
    }

    /// Install fault injection on this network. `salt` distinguishes the
    /// forward and reverse instances so each draws an independent stream
    /// from one machine seed. Transient fault decisions are made once per
    /// accepted injection: `mix(seed, salt ^ port, nth-injection)` drops
    /// the packet with probability `drop_ppm` per million, else corrupts
    /// a request (the module will NACK) with `nack_ppm` per million.
    pub fn enable_faults(&mut self, seed: u64, salt: u64, drop_ppm: u64, nack_ppm: u64) {
        self.stall = None;
        self.faults = Some(Box::new(NetFaults {
            seed,
            salt,
            drop_ppm,
            nack_ppm,
            inj_seq: vec![0; self.size],
            down: vec![false; self.size],
            doom: Vec::new(),
        }));
    }

    /// Install causal tracing on this network. `fwd` selects the forward
    /// or reverse hop kinds for the stamps. Like fault injection, the
    /// untraced hot path pays a single `Option` check per site.
    pub(crate) fn enable_trace(&mut self, fwd: bool) {
        self.trace = Some(Box::new(NetTrace::new(fwd)));
    }

    /// Set the cycle used for this network's trace stamps. Called by the
    /// machine after advancing `now`, before any injection or tick can
    /// touch the network this cycle. No-op when tracing is off.
    #[inline]
    pub(crate) fn set_trace_now(&mut self, now: Cycle) {
        if let Some(t) = self.trace.as_deref_mut() {
            t.now = now;
        }
    }

    /// Drain the network's stamped trace events (and overflow count),
    /// leaving the buffer empty. Returns nothing when tracing is off.
    pub(crate) fn drain_trace(&mut self) -> Option<(Vec<TraceEvent>, u64)> {
        let t = self.trace.as_deref_mut()?;
        let events = std::mem::take(&mut t.buf.events);
        let dropped = std::mem::replace(&mut t.buf.dropped, 0);
        Some((events, dropped))
    }

    /// Trace id and issuing CE of a live in-flight packet.
    #[inline]
    fn slab_trace(&self, id: PacketId) -> (u64, u16) {
        match &self.slab[id as usize] {
            Slot::Live(pkt) => pkt_trace(pkt),
            Slot::Free { .. } => unreachable!("queued flit has live packet"),
        }
    }

    /// Mark `port` down (all injections refused and charged to
    /// `link_blocked`) or back up. No-op unless [`Omega::enable_faults`]
    /// was called. Packets already in flight keep draining — an outage
    /// severs the injection link, it does not strand wormhole locks.
    pub fn set_port_down(&mut self, port: usize, down: bool) {
        assert!(port < self.size, "port {port} out of range");
        self.stall = None;
        if let Some(f) = self.faults.as_deref_mut() {
            f.down[port] = down;
        }
    }

    /// Packets currently in flight (accepted but not yet delivered or
    /// evaporated). With the `drops` and `packets_delivered` counters this
    /// closes the conservation law `injected = delivered + drops +
    /// in_flight`.
    pub fn in_flight_packets(&self) -> usize {
        self.in_flight
    }

    /// Whether the packet in slab slot `id` was marked for transient drop
    /// at injection.
    #[inline]
    fn doomed(&self, id: PacketId) -> bool {
        match &self.faults {
            Some(f) => f.doom.get(id as usize).copied().unwrap_or(false),
            None => false,
        }
    }

    /// Number of addressable lines (`radix^stages`, ≥ the requested ports).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of switch stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Offer a packet for injection at `port`. Returns `false` when the
    /// port's injector is full; the caller must retry later (this is the
    /// backpressure that stalls a CE or memory module).
    pub fn try_inject(&mut self, port: usize, packet: Packet) -> bool {
        assert!(port < self.size, "port {port} out of range");
        assert!(
            packet.dst < self.size,
            "destination {} out of range",
            packet.dst
        );
        assert!(packet.words >= 1, "packets carry at least the header word");
        if let Some(f) = self.faults.as_deref() {
            if f.down[port] {
                self.stats.link_blocked += 1;
                return false;
            }
        }
        if self.injectors[port].len() >= self.injector_cap {
            return false;
        }
        let mut packet = packet;
        let mut doom = false;
        if let Some(f) = self.faults.as_deref_mut() {
            if f.drop_ppm + f.nack_ppm > 0 {
                let n = f.inj_seq[port];
                f.inj_seq[port] += 1;
                let r = crate::fault::mix(f.seed, f.salt ^ port as u64, n) % 1_000_000;
                if r < f.drop_ppm {
                    doom = true;
                    self.stats.drops += 1;
                } else if r < f.drop_ppm + f.nack_ppm {
                    if let crate::network::packet::Payload::Request(req) = &mut packet.payload {
                        req.nacked = true;
                        self.stats.nacks += 1;
                    }
                }
            }
        }
        if let Some(t) = self.trace.as_deref_mut() {
            let (tid, ce) = pkt_trace(&packet);
            if tid != 0 {
                t.stamp_inject(tid, ce);
            }
        }
        let words = packet.words;
        let id = self.alloc(packet);
        if let Some(f) = self.faults.as_deref_mut() {
            // Slab slots are reused, so the doom bit is (re)written on
            // every allocation, not just when set.
            if f.doom.len() <= id as usize {
                f.doom.resize(id as usize + 1, false);
            }
            f.doom[id as usize] = doom;
        }
        self.injectors[port].push_back((id, words));
        self.inject_ports.set(port);
        self.pending_injections += 1;
        self.stats.packets_injected += 1;
        // New work invalidates any cached stall charge: the next tick must
        // re-sweep (the fresh packet may move, or adds its own charge).
        self.stall = None;
        true
    }

    /// True when no packet is anywhere in the network.
    pub fn is_idle(&self) -> bool {
        self.in_flight == 0
    }

    /// The earliest future cycle at which the network can change
    /// externally visible state: any in-flight packet means the very next
    /// cycle; an empty network means never (`None`).
    pub(crate) fn next_event(&self, now: crate::time::Cycle) -> Option<crate::time::Cycle> {
        if self.in_flight == 0 {
            None
        } else {
            Some(now + 1)
        }
    }

    /// Packets `port`'s injector can still accept this cycle. Injection
    /// acceptance depends only on this per-port occupancy, which is what
    /// lets the parallel engine precompute it for its staging buffers.
    pub fn injector_free(&self, port: usize) -> usize {
        if let Some(f) = self.faults.as_deref() {
            if f.down[port] {
                return 0;
            }
        }
        self.injector_cap.saturating_sub(self.injectors[port].len())
    }

    /// Packets currently queued on `port`'s injector ring.
    pub(crate) fn injector_len(&self, port: usize) -> usize {
        self.injectors[port].len()
    }

    /// Words still to be streamed by `port`'s injector, in drain order:
    /// the front packet's *remaining* words first, then each queued
    /// packet's full word count. Seeds the parallel engine's shadow
    /// injector ring at a chunk boundary. The front entry is always ≥ 1:
    /// a fully-sent packet is popped the cycle its last word moves.
    pub(crate) fn injector_backlog(&self, port: usize) -> ([u8; INJ_CAP], usize) {
        let inj = &self.injectors[port];
        let mut words = [0u8; INJ_CAP];
        for (slot, out) in words.iter_mut().enumerate().take(inj.len()) {
            *out = inj.slots[(usize::from(inj.head) + slot) % INJ_CAP].1;
        }
        if inj.len() > 0 {
            debug_assert!(words[0] > inj.words_sent);
            words[0] -= inj.words_sent;
        }
        (words, inj.len())
    }

    /// Occupancy, in words, of the stage-0 switch queue that `port`'s
    /// injector streams into (each port owns its stage-0 line through the
    /// perfect shuffle, so this occupancy is what gates injection drains).
    pub(crate) fn stage0_queue_len(&self, port: usize) -> usize {
        usize::from(self.qlen[self.shuffle_tab[port] as usize])
    }

    /// Capacity, in words, of each stage queue.
    pub(crate) fn stage_queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Capacity, in packets, of each port's injector ring.
    pub(crate) fn injector_capacity(&self) -> usize {
        self.injector_cap
    }

    /// True when the fault layer currently holds `port`'s link down.
    pub(crate) fn port_link_down(&self, port: usize) -> bool {
        self.faults.as_deref().is_some_and(|f| f.down[port])
    }

    /// Fold `n` link-refused injection attempts counted outside the
    /// network into `link_blocked`. The parallel engine's staging ports
    /// refuse injections on behalf of a downed link mid-chunk (exactly as
    /// [`Omega::try_inject`] would have, which charges the stat without
    /// touching any other state) and account them here at the exchange.
    pub(crate) fn add_link_blocked(&mut self, n: u64) {
        self.stats.link_blocked += n;
    }

    /// Statistics since construction.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Arbitration losses per switch stage (index = stage).
    pub fn stage_conflicts(&self) -> &[u64] {
        &self.stage_conflicts
    }

    /// Flow-control blocks per switch stage (index = stage; injection
    /// blocks are charged to stage 0).
    pub fn stage_blocked(&self) -> &[u64] {
        &self.stage_blocked
    }

    /// Distribution of stage-queue depths, sampled after every word push.
    pub fn queue_depth_histogram(&self) -> &Histogrammer {
        &self.queue_depth
    }

    /// Advance the network one cycle, delivering completed packets to
    /// `sink`. Words move at most one hop per cycle; stages are processed
    /// downstream-first so freed space propagates upstream next cycle, like
    /// the real per-stage flow control. Generic over the sink so the
    /// memory- and CE-side delivery paths monomorphize and inline.
    ///
    /// This entry makes no promise about the sink between calls, so it
    /// never replays a cached stall charge; use [`Omega::tick_epoch`] when
    /// the caller can vouch for the sink's acceptance state.
    pub fn tick<S: NetSink + ?Sized>(&mut self, sink: &mut S) {
        self.stall = None;
        self.tick_epoch(sink, 0);
    }

    /// Advance the network one cycle under a sink-acceptance `epoch`: a
    /// value the caller changes whenever any [`NetSink::try_begin`] answer
    /// may have changed since the previous tick (and otherwise keeps
    /// constant). With the flow path on, a tick that moved nothing — every
    /// stream stalled behind flow control or a refusing sink — caches its
    /// stat charge, and subsequent ticks at the same epoch with no
    /// intervening injection or fault event replay it in O(1) instead of
    /// re-arbitrating every switch. The replayed charge is exactly what
    /// the oracle sweep would have recomputed, bit for bit.
    pub fn tick_epoch<S: NetSink + ?Sized>(&mut self, sink: &mut S, epoch: u64) {
        if self.in_flight == 0 {
            return; // nothing anywhere in the network
        }
        if !self.flow_path {
            self.sweep(sink);
            return;
        }
        if let Some(c) = &self.stall {
            if c.epoch == epoch {
                // The previous tick moved nothing and nothing has changed
                // since: this tick charges the identical stall deltas and
                // again moves nothing.
                self.stats.blocked_moves += c.blocked;
                self.stats.arbitration_losses += c.losses;
                for (s, d) in c.stage_blocked.iter().enumerate() {
                    self.stage_blocked[s] += d;
                }
                for (s, d) in c.stage_conflicts.iter().enumerate() {
                    self.stage_conflicts[s] += d;
                }
                self.stall_replays += 1;
                return;
            }
            // Sink state moved on: the cached charge is stale.
            self.stall = None;
        }
        let moved0 = self.stats.words_moved;
        let blocked0 = self.stats.blocked_moves;
        let losses0 = self.stats.arbitration_losses;
        let mut sb0 = [0u64; MAX_STAGES];
        let mut sc0 = [0u64; MAX_STAGES];
        sb0[..self.stages].copy_from_slice(&self.stage_blocked);
        sc0[..self.stages].copy_from_slice(&self.stage_conflicts);
        self.sweep(sink);
        if self.stats.words_moved == moved0 {
            // Nothing moved, so nothing in the network changed: queues,
            // locks, round-robin pointers and assemblers are untouched
            // (only stat charges were made). Cache the tick's exact charge
            // for O(1) replay while the stall horizon lasts.
            let stage_blocked = self
                .stage_blocked
                .iter()
                .zip(&sb0)
                .map(|(a, b)| a - b)
                .collect();
            let stage_conflicts = self
                .stage_conflicts
                .iter()
                .zip(&sc0)
                .map(|(a, b)| a - b)
                .collect();
            self.stall = Some(StallCharge {
                epoch,
                blocked: self.stats.blocked_moves - blocked0,
                losses: self.stats.arbitration_losses - losses0,
                stage_blocked,
                stage_conflicts,
            });
        }
    }

    /// One full cycle of the per-flit sweep: up to `words_per_cycle`
    /// passes, then injection. Shared by the oracle path and the flow
    /// path's non-stalled ticks (the flow path differs per switch, not in
    /// the pass structure).
    fn sweep<S: NetSink + ?Sized>(&mut self, sink: &mut S) {
        for _ in 0..self.words_per_cycle {
            // A pass that neither moved a word nor charged a block or an
            // arbitration loss left the network untouched, so every further
            // pass this cycle would be an identical no-op.
            let before =
                self.stats.words_moved + self.stats.blocked_moves + self.stats.arbitration_losses;
            self.move_words_once(sink);
            let after =
                self.stats.words_moved + self.stats.blocked_moves + self.stats.arbitration_losses;
            if after == before {
                break;
            }
        }
        self.inject_words();
    }

    fn alloc(&mut self, packet: Packet) -> PacketId {
        self.in_flight += 1;
        if self.free_head != NO_PACKET {
            let id = self.free_head;
            match self.slab[id as usize] {
                Slot::Free { next } => self.free_head = next,
                Slot::Live(_) => unreachable!("free list points at a live packet"),
            }
            self.slab[id as usize] = Slot::Live(packet);
            id
        } else {
            self.slab.push(Slot::Live(packet));
            (self.slab.len() - 1) as PacketId
        }
    }

    fn release(&mut self, id: PacketId) -> Packet {
        self.in_flight -= 1;
        let slot = std::mem::replace(
            &mut self.slab[id as usize],
            Slot::Free {
                next: self.free_head,
            },
        );
        self.free_head = id;
        match slot {
            Slot::Live(pkt) => pkt,
            Slot::Free { .. } => unreachable!("released packet must be live"),
        }
    }

    /// Destination of a live in-flight packet.
    #[inline]
    fn packet_dst(&self, id: PacketId) -> usize {
        match &self.slab[id as usize] {
            Slot::Live(pkt) => pkt.dst,
            Slot::Free { .. } => unreachable!("queued flit has live packet"),
        }
    }

    /// Perfect shuffle: rotate the base-`radix` digits of `line` left
    /// (precomputed — the closed form divides by the non-constant radix).
    #[inline]
    fn shuffle(&self, line: usize) -> usize {
        self.shuffle_tab[line] as usize
    }

    /// Routing digit consumed at `stage` for destination `dst`
    /// (most-significant digit first; precomputed per `(stage, dst)`).
    #[inline]
    fn route_digit(&self, dst: usize, stage: usize) -> usize {
        usize::from(self.route_tab[stage * self.size + dst])
    }

    /// Front flit of queue `idx` (`stage * size + line`); the queue must
    /// be non-empty.
    #[inline]
    fn q_front(&self, idx: usize) -> Flit {
        debug_assert!(self.qlen[idx] > 0, "front of an empty queue");
        self.qbuf[idx * self.queue_cap + usize::from(self.qhead[idx])]
    }

    /// Drop the front word of queue `idx` without re-reading it (the
    /// caller already holds a copy from [`Omega::q_front`]).
    #[inline]
    fn q_advance(&mut self, idx: usize) {
        debug_assert!(self.qlen[idx] > 0);
        let h = usize::from(self.qhead[idx]) + 1;
        self.qhead[idx] = if h == self.queue_cap { 0 } else { h as u8 };
        self.qlen[idx] -= 1;
    }

    /// Append `f` to queue `idx`, returning the new depth.
    #[inline]
    fn q_push(&mut self, idx: usize, f: Flit) -> usize {
        let len = usize::from(self.qlen[idx]);
        debug_assert!(len < self.queue_cap, "ring overflow");
        let mut slot = usize::from(self.qhead[idx]) + len;
        if slot >= self.queue_cap {
            slot -= self.queue_cap;
        }
        self.qbuf[idx * self.queue_cap + slot] = f;
        self.qlen[idx] = (len + 1) as u8;
        len + 1
    }

    /// Recompute the cached output subport of the front word on
    /// `stage`'s `line` after a queue push/pop changed the front.
    #[inline]
    fn refresh_front(&mut self, stage: usize, line: usize) {
        let idx = stage * self.size + line;
        self.front_out[idx] = if self.qlen[idx] == 0 {
            NO_FRONT
        } else {
            let f = self.q_front(idx);
            if f.is_head {
                f.route
            } else {
                // A body word at the front implies its head already moved
                // through this stage and left the output lock behind.
                debug_assert_ne!(self.locked_to[idx], NO_FRONT);
                self.locked_to[idx]
            }
        };
    }

    /// Note a word arriving at `sw` of `stage` (count + busy-mask upkeep).
    #[inline]
    fn add_switch_word(&mut self, stage: usize, sw: usize) {
        self.switch_words[stage * (self.size / self.radix) + sw] += 1;
        self.switch_busy[stage * self.mask_chunks + sw / 64] |= 1 << (sw % 64);
    }

    /// Note a word leaving `sw` of `stage`, clearing its busy bit on the
    /// last word out.
    #[inline]
    fn sub_switch_word(&mut self, stage: usize, sw: usize) {
        let idx = stage * (self.size / self.radix) + sw;
        self.switch_words[idx] -= 1;
        if self.switch_words[idx] == 0 {
            self.switch_busy[stage * self.mask_chunks + sw / 64] &= !(1 << (sw % 64));
        }
    }

    fn move_words_once<S: NetSink + ?Sized>(&mut self, sink: &mut S) {
        // The flow path's SWAR sweep reads a switch's cached fronts as one
        // word; it needs the full radix-8 byte lane. Other radices run the
        // (identical) dense per-line scan.
        let swar = self.flow_path && self.radix == 8;
        for stage in (0..self.stages).rev() {
            if self.stage_words[stage] == 0 {
                continue; // no queued words anywhere in this stage
            }
            // Visit only switches holding words, in ascending order (the
            // same order as a dense scan): an empty switch's sweep is a
            // guaranteed no-op, and on a sparse cycle (the common case)
            // nearly every switch is empty. The chunk snapshot is safe:
            // ticking a switch can only move words downstream, so it never
            // changes another same-stage switch's occupancy.
            for c in 0..self.mask_chunks {
                let mut bits = self.switch_busy[stage * self.mask_chunks + c];
                while bits != 0 {
                    let sw = c * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if swar {
                        self.tick_switch_flow8(stage, sw, sink);
                    } else {
                        self.tick_switch(stage, sw, sink);
                    }
                }
            }
        }
    }

    /// Advance one switch: read the cached input fronts (one contiguous
    /// byte per line), collecting the output each movable word wants; then
    /// serve each requested output (lock owner first, else round-robin
    /// among competing head words).
    fn tick_switch<S: NetSink + ?Sized>(&mut self, stage: usize, sw: usize, sink: &mut S) {
        const MAX_RADIX: usize = 16;
        debug_assert!(self.radix <= MAX_RADIX);
        let base = sw * self.radix;
        let qbase = stage * self.size + base;
        // For each output subport, the input subports requesting it, plus
        // the set of outputs requested at all.
        let mut requested = [0u16; MAX_RADIX];
        let mut outs: u32 = 0;
        for (i, &out) in self.front_out[qbase..qbase + self.radix].iter().enumerate() {
            if out != NO_FRONT {
                requested[usize::from(out)] |= 1 << i;
                outs |= 1 << u32::from(out);
            }
        }
        // Ascending subport order, skipping unrequested outputs — the same
        // visit order as a dense 0..radix loop.
        while outs != 0 {
            let subport = outs.trailing_zeros() as usize;
            outs &= outs - 1;
            let req = requested[subport];
            let out_line = base + subport;
            let owner = self.locks[stage * self.size + out_line];
            let src_line = if owner != NO_LOCK {
                // Only the lock owner may use this output; competing head
                // words wait (no arbitration happened, so no losses are
                // charged).
                if req & (1 << (owner as usize - base)) == 0 {
                    continue;
                }
                owner as usize
            } else {
                // Round-robin: first requesting input at or cyclically
                // after `start` wins; every other requester loses.
                let start = usize::from(self.rr[stage * self.size + out_line]);
                let rot = ((u32::from(req) >> start) | (u32::from(req) << (self.radix - start)))
                    & ((1u32 << self.radix) - 1);
                let first = rot.trailing_zeros() as usize;
                let losers = u64::from(req.count_ones()) - 1;
                self.stats.arbitration_losses += losers;
                self.stage_conflicts[stage] += losers;
                base + (start + first) % self.radix
            };
            self.move_from(stage, out_line, src_line, sink);
        }
    }

    /// The flow path's radix-8 switch sweep: read all eight cached input
    /// fronts as one little-endian word and operate on the live lanes
    /// only. Route subports are 0..8 and the empty sentinel is `0xFF`, so
    /// "live" is exactly "high bit clear" — one mask, no per-byte
    /// comparisons. Visit order (ascending line, then ascending output
    /// subport) and every arbitration rule match [`Omega::tick_switch`]
    /// bit for bit; only the scan is restructured.
    fn tick_switch_flow8<S: NetSink + ?Sized>(&mut self, stage: usize, sw: usize, sink: &mut S) {
        const HI: u64 = 0x8080_8080_8080_8080;
        let base = sw * 8;
        let qbase = stage * self.size + base;
        let fronts = u64::from_le_bytes(
            self.front_out[qbase..qbase + 8]
                .try_into()
                .expect("eight front bytes per radix-8 switch"),
        );
        let mut live = !fronts & HI; // high bit per line with a queued word
        debug_assert_ne!(live, 0, "switch_words said this switch holds words");
        if live & (live - 1) == 0 {
            // One requesting line: it wins any arbitration unopposed (no
            // losses, no round-robin movement), and a held lock either
            // belongs to it or excludes it.
            let i = (live.trailing_zeros() >> 3) as usize;
            let out = usize::from((fronts >> (i * 8)) as u8);
            let out_line = base + out;
            let owner = self.locks[stage * self.size + out_line];
            if owner == NO_LOCK || owner as usize == base + i {
                self.move_from(stage, out_line, base + i, sink);
            }
            return;
        }
        // Several live lines: group them by requested output, then serve
        // each output exactly as the dense sweep does.
        let mut requested = [0u16; 8];
        let mut outs: u32 = 0;
        while live != 0 {
            let i = (live.trailing_zeros() >> 3) as usize;
            live &= live - 1;
            let out = usize::from((fronts >> (i * 8)) as u8);
            requested[out] |= 1 << i;
            outs |= 1 << out;
        }
        while outs != 0 {
            let subport = outs.trailing_zeros() as usize;
            outs &= outs - 1;
            let req = requested[subport];
            let out_line = base + subport;
            let owner = self.locks[stage * self.size + out_line];
            let src_line = if owner != NO_LOCK {
                if req & (1 << (owner as usize - base)) == 0 {
                    continue;
                }
                owner as usize
            } else {
                let start = usize::from(self.rr[stage * self.size + out_line]);
                let rot = ((u32::from(req) >> start) | (u32::from(req) << (8 - start)))
                    & ((1u32 << 8) - 1);
                let first = rot.trailing_zeros() as usize;
                let losers = u64::from(req.count_ones()) - 1;
                self.stats.arbitration_losses += losers;
                self.stage_conflicts[stage] += losers;
                base + (start + first) % 8
            };
            self.move_from(stage, out_line, src_line, sink);
        }
    }

    /// Move the front word of `src_line` through `stage` to `out_line`.
    /// Inlined into both switch sweeps: the callers already hold the
    /// stage-relative indices this recomputes, and the call sits on the
    /// per-word hot edge.
    #[inline]
    fn move_from<S: NetSink + ?Sized>(
        &mut self,
        stage: usize,
        out_line: usize,
        src_line: usize,
        sink: &mut S,
    ) {
        let src_idx = stage * self.size + src_line;
        let flit = self.q_front(src_idx);

        // Check downstream space (next stage queue, or sink acceptance).
        // A doomed packet never consults the sink: it occupies links and
        // queues like any other packet but evaporates instead of ejecting.
        let last = stage == self.stages - 1;
        if last {
            if flit.is_head
                && !self.doomed(flit.pkt)
                && !self.assemblers[out_line].accepted
                && !sink.try_begin(out_line)
            {
                self.stats.blocked_moves += 1;
                self.stage_blocked[stage] += 1;
                return;
            }
        } else {
            let next_line = self.shuffle(out_line);
            if usize::from(self.qlen[(stage + 1) * self.size + next_line]) >= self.queue_cap {
                self.stats.blocked_moves += 1;
                self.stage_blocked[stage] += 1;
                return;
            }
        }

        // Commit the move (`flit` already holds the front word).
        self.q_advance(src_idx);
        self.stage_words[stage] -= 1;
        self.sub_switch_word(stage, usize::from(self.sw_of[src_line]));
        self.stats.words_moved += 1;
        if flit.is_tail {
            self.locks[stage * self.size + out_line] = NO_LOCK;
            self.locked_to[stage * self.size + src_line] = NO_FRONT;
        } else {
            self.locks[stage * self.size + out_line] = src_line as u32;
            self.locked_to[stage * self.size + src_line] = self.sub_of[out_line];
        }
        if flit.is_head {
            // Advance round-robin past the winner for fairness
            // (`sub + 1`, wrapping at the radix).
            let sub = self.sub_of[src_line] + 1;
            self.rr[stage * self.size + out_line] = if usize::from(sub) == self.radix {
                0
            } else {
                sub
            };
        }
        // The pop (and lock update, which a newly exposed body word reads)
        // changed this line's front.
        self.refresh_front(stage, src_line);
        if last {
            let doomed = self.doomed(flit.pkt);
            let asm = &mut self.assemblers[out_line];
            if flit.is_head {
                asm.accepted = true;
            }
            if flit.is_tail {
                asm.accepted = false;
                let pkt = self.release(flit.pkt);
                if !doomed {
                    self.stats.packets_delivered += 1;
                    if let Some(t) = self.trace.as_deref_mut() {
                        let (tid, ce) = pkt_trace(&pkt);
                        if tid != 0 {
                            t.stamp_deliver(tid, ce);
                        }
                    }
                    sink.deliver(out_line, pkt);
                }
            }
        } else {
            let mut flit = flit;
            if flit.is_head {
                let dst = self.packet_dst(flit.pkt);
                flit.route = self.route_digit(dst, stage + 1) as u8;
                if self.trace.is_some() {
                    let (tid, ce) = self.slab_trace(flit.pkt);
                    if tid != 0 {
                        self.trace
                            .as_deref_mut()
                            .expect("checked above")
                            .stamp_stage(tid, ce, (stage + 1) as u8);
                    }
                }
            }
            let next_line = self.shuffle(out_line);
            let depth = self.q_push((stage + 1) * self.size + next_line, flit);
            self.stage_words[stage + 1] += 1;
            self.add_switch_word(stage + 1, usize::from(self.sw_of[next_line]));
            if depth == 1 {
                // The pushed word became the next stage's front.
                self.refresh_front(stage + 1, next_line);
            }
            self.queue_depth.record(depth);
        }
    }

    fn inject_words(&mut self) {
        if self.pending_injections == 0 {
            return;
        }
        // Scan only ports with queued injections, in ascending port order
        // (the same deterministic order the dense loop used).
        for w in 0..self.inject_ports.chunks() {
            let mut bits = self.inject_ports.chunk(w);
            while bits != 0 {
                let port = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (pkt, words) = self.injectors[port].front().expect("masked port has work");
                let line = self.shuffle(port);
                if usize::from(self.qlen[line]) >= self.queue_cap {
                    self.stats.blocked_moves += 1;
                    self.stage_blocked[0] += 1;
                    continue;
                }
                let sent = self.injectors[port].words_sent;
                let is_head = sent == 0;
                let route = if is_head {
                    self.route_digit(self.packet_dst(pkt), 0) as u8
                } else {
                    0
                };
                let flit = Flit {
                    pkt,
                    is_head,
                    is_tail: sent + 1 == words,
                    route,
                };
                if is_head && self.trace.is_some() {
                    let (tid, ce) = self.slab_trace(pkt);
                    if tid != 0 {
                        self.trace
                            .as_deref_mut()
                            .expect("checked above")
                            .stamp_stage(tid, ce, 0);
                    }
                }
                let depth = self.q_push(line, flit);
                self.stage_words[0] += 1;
                self.add_switch_word(0, usize::from(self.sw_of[line]));
                if depth == 1 {
                    // The injected word became this line's front.
                    self.refresh_front(0, line);
                }
                self.queue_depth.record(depth);
                self.stats.words_moved += 1;
                let inj = &mut self.injectors[port];
                inj.words_sent += 1;
                if inj.words_sent == words {
                    inj.pop_front();
                    inj.words_sent = 0;
                    self.pending_injections -= 1;
                    if inj.len == 0 {
                        self.inject_ports.clear(port);
                    }
                }
            }
        }
    }
}

use crate::snapshot::{get_packet, put_packet, SnapReader, SnapResult, SnapWriter};

impl Omega {
    /// Serialize the network's complete mutable state. Config-derived
    /// tables (shuffle, routing, switch/subport maps), the fault seeds
    /// and the cached stall charge are not written: the first two are
    /// rebuilt by [`Omega::new`], the seeds come from the fault plan,
    /// and the stall cache is recomputed bit-identically by the next
    /// tick.
    pub(crate) fn save_state(&self, w: &mut SnapWriter) {
        w.tag(b"OMGA");
        // In-flight packet slab first: queued flits reference its ids.
        w.seq(self.slab.iter(), |w, slot| match slot {
            Slot::Live(pkt) => {
                w.u8(1);
                put_packet(w, pkt);
            }
            Slot::Free { next } => {
                w.u8(0);
                w.u32(*next);
            }
        });
        w.u32(self.free_head);
        // Stage queues front-to-back; the physical ring head is not state.
        w.seq(0..self.stages * self.size, |w, idx| {
            let len = usize::from(self.qlen[idx]);
            w.u8(self.qlen[idx]);
            for j in 0..len {
                let mut slot = usize::from(self.qhead[idx]) + j;
                if slot >= self.queue_cap {
                    slot -= self.queue_cap;
                }
                let f = self.qbuf[idx * self.queue_cap + slot];
                w.u32(f.pkt);
                w.bool(f.is_head);
                w.bool(f.is_tail);
                w.u8(f.route);
            }
        });
        w.seq(0..self.stages * self.size, |w, idx| {
            w.u32(self.locks[idx]);
            w.u8(self.locked_to[idx]);
            w.u8(self.rr[idx]);
        });
        w.seq(self.injectors.iter(), |w, inj| {
            w.u8(inj.len);
            w.u8(inj.words_sent);
            for slot in 0..inj.len() {
                let (pkt, words) = inj.slots[(usize::from(inj.head) + slot) % INJ_CAP];
                w.u32(pkt);
                w.u8(words);
            }
        });
        w.seq(self.assemblers.iter(), |w, a| w.bool(a.accepted));
        w.u64(self.stats.packets_injected);
        w.u64(self.stats.packets_delivered);
        w.u64(self.stats.words_moved);
        w.u64(self.stats.blocked_moves);
        w.u64(self.stats.arbitration_losses);
        w.u64(self.stats.link_blocked);
        w.u64(self.stats.drops);
        w.u64(self.stats.nacks);
        w.seq(self.stage_conflicts.iter(), |w, v| w.u64(*v));
        w.seq(self.stage_blocked.iter(), |w, v| w.u64(*v));
        self.queue_depth.save_state(w);
        w.u64(self.stall_replays);
        w.opt(self.faults.as_deref(), |w, f| {
            w.seq(f.inj_seq.iter(), |w, v| w.u64(*v));
            w.seq(f.down.iter(), |w, v| w.bool(*v));
            w.seq(f.doom.iter(), |w, v| w.bool(*v));
        });
        w.opt(self.trace.as_deref(), |w, t| t.save_state(w));
    }

    /// Restore state written by [`Omega::save_state`] into a network
    /// built with the identical configuration. Derived occupancy indexes
    /// (stage/switch word counts, busy masks, cached fronts, injection
    /// mask) are rebuilt from the restored queues rather than trusted
    /// from the snapshot.
    pub(crate) fn load_state(&mut self, r: &mut SnapReader) -> SnapResult<()> {
        r.tag(b"OMGA")?;
        self.slab = r.seq(|r| match r.u8()? {
            0 => Ok(Slot::Free { next: r.u32()? }),
            1 => Ok(Slot::Live(get_packet(r)?)),
            b => Err(r.err_invalid("slab slot kind", b)),
        })?;
        self.free_head = r.u32()?;
        let slots = self.slab.len() as u32;
        if self.free_head != NO_PACKET && self.free_head >= slots {
            return Err(r.err_mismatch("slab free head out of range"));
        }
        for slot in &self.slab {
            if let Slot::Free { next } = slot {
                if *next != NO_PACKET && *next >= slots {
                    return Err(r.err_mismatch("slab free link out of range"));
                }
            }
        }
        self.in_flight = self
            .slab
            .iter()
            .filter(|s| matches!(s, Slot::Live(_)))
            .count();
        let queues = self.stages * self.size;
        r.seq_exact(queues, |r, idx| {
            let len = usize::from(r.u8()?);
            if len > self.queue_cap {
                return Err(r.err_mismatch("stage queue deeper than its capacity"));
            }
            self.qhead[idx] = 0;
            self.qlen[idx] = len as u8;
            for j in 0..len {
                let pkt = r.u32()?;
                if pkt >= slots {
                    return Err(r.err_mismatch("queued flit references no slab slot"));
                }
                let is_head = r.bool()?;
                let is_tail = r.bool()?;
                let route = r.u8()?;
                self.qbuf[idx * self.queue_cap + j] = Flit {
                    pkt,
                    is_head,
                    is_tail,
                    route,
                };
            }
            Ok(())
        })?;
        r.seq_exact(queues, |r, idx| {
            self.locks[idx] = r.u32()?;
            self.locked_to[idx] = r.u8()?;
            self.rr[idx] = r.u8()?;
            Ok(())
        })?;
        r.seq_exact(self.size, |r, port| {
            let len = r.u8()?;
            if usize::from(len) > INJ_CAP {
                return Err(r.err_mismatch("injector ring deeper than its capacity"));
            }
            let words_sent = r.u8()?;
            let inj = &mut self.injectors[port];
            *inj = Injector::default();
            inj.len = len;
            inj.words_sent = words_sent;
            for slot in 0..usize::from(len) {
                let pkt = r.u32()?;
                let words = r.u8()?;
                inj.slots[slot] = (pkt, words);
            }
            Ok(())
        })?;
        r.seq_exact(self.size, |r, port| {
            self.assemblers[port].accepted = r.bool()?;
            Ok(())
        })?;
        self.stats.packets_injected = r.u64()?;
        self.stats.packets_delivered = r.u64()?;
        self.stats.words_moved = r.u64()?;
        self.stats.blocked_moves = r.u64()?;
        self.stats.arbitration_losses = r.u64()?;
        self.stats.link_blocked = r.u64()?;
        self.stats.drops = r.u64()?;
        self.stats.nacks = r.u64()?;
        r.seq_exact(self.stages, |r, s| {
            self.stage_conflicts[s] = r.u64()?;
            Ok(())
        })?;
        r.seq_exact(self.stages, |r, s| {
            self.stage_blocked[s] = r.u64()?;
            Ok(())
        })?;
        self.queue_depth = Histogrammer::decode(r)?;
        self.stall_replays = r.u64()?;
        let had_faults = r.bool()?;
        match (had_faults, self.faults.as_deref_mut()) {
            (true, Some(f)) => {
                let inj_seq = r.seq(|r| r.u64())?;
                if inj_seq.len() != f.inj_seq.len() {
                    return Err(r.err_mismatch("fault-injection port count"));
                }
                f.inj_seq = inj_seq;
                let down = r.seq(|r| r.bool())?;
                if down.len() != f.down.len() {
                    return Err(r.err_mismatch("fault-outage port count"));
                }
                f.down = down;
                f.doom = r.seq(|r| r.bool())?;
            }
            (false, None) => {}
            _ => {
                return Err(r.err_mismatch(
                    "snapshot fault-injection state disagrees with this machine's fault plan",
                ));
            }
        }
        let had_trace = r.bool()?;
        match (had_trace, self.trace.as_deref_mut()) {
            (true, Some(t)) => t.load_state(r)?,
            (false, None) => {}
            _ => {
                return Err(r.err_mismatch(
                    "snapshot network-tracing state disagrees with this machine's tracing setup",
                ));
            }
        }
        // Rebuild the derived occupancy indexes; drop the stall cache (the
        // next tick recomputes it bit-identically).
        self.pending_injections = self.injectors.iter().map(Injector::len).sum();
        self.inject_ports = LineMask::new(self.size);
        for port in 0..self.size {
            if self.injectors[port].len() > 0 {
                self.inject_ports.set(port);
            }
        }
        self.stage_words.iter_mut().for_each(|v| *v = 0);
        self.switch_words.iter_mut().for_each(|v| *v = 0);
        self.switch_busy.iter_mut().for_each(|v| *v = 0);
        for stage in 0..self.stages {
            for line in 0..self.size {
                let idx = stage * self.size + line;
                let n = self.qlen[idx];
                self.stage_words[stage] += u32::from(n);
                for _ in 0..n {
                    self.add_switch_word(stage, usize::from(self.sw_of[line]));
                }
                self.refresh_front(stage, line);
            }
        }
        self.stall = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CeId;
    use crate::network::packet::{MemRequest, Payload, RequestKind, Stream};
    use crate::time::Cycle;

    fn cfg(radix: usize) -> NetworkConfig {
        NetworkConfig {
            radix,
            queue_words: 2,
            words_per_cycle: 1,
        }
    }

    fn pkt(dst: usize, words: u8, addr: u64) -> Packet {
        Packet {
            dst,
            words,
            payload: Payload::Request(MemRequest {
                ce: CeId(0),
                kind: RequestKind::Read,
                addr,
                stream: Stream::Scalar,
                issued: Cycle(0),
                seq: 0,
                nacked: false,
                trace: 0,
            }),
        }
    }

    /// Sink that records deliveries and can refuse new packets.
    #[derive(Default)]
    struct RecSink {
        delivered: Vec<(usize, Packet)>,
        refuse: bool,
    }

    impl NetSink for RecSink {
        fn try_begin(&mut self, _port: usize) -> bool {
            !self.refuse
        }
        fn deliver(&mut self, port: usize, packet: Packet) {
            self.delivered.push((port, packet));
        }
    }

    fn run_until_idle(net: &mut Omega, sink: &mut RecSink, max: usize) {
        for _ in 0..max {
            if net.is_idle() {
                return;
            }
            net.tick(sink);
        }
        assert!(net.is_idle(), "network did not drain");
    }

    #[test]
    fn geometry_of_cedar_network() {
        let net = Omega::new(32, &cfg(8));
        assert_eq!(net.size(), 64);
        assert_eq!(net.stages(), 2);
        let net = Omega::new(32, &cfg(2));
        assert_eq!(net.size(), 32);
        assert_eq!(net.stages(), 5);
    }

    #[test]
    fn shuffle_rotates_digits() {
        let net = Omega::new(4, &cfg(2));
        // size 4, radix 2: shuffle(01)=10, shuffle(11)=11.
        assert_eq!(net.shuffle(1), 2);
        assert_eq!(net.shuffle(3), 3);
        assert_eq!(net.shuffle(0), 0);
        assert_eq!(net.shuffle(2), 1);
    }

    #[test]
    fn routes_every_source_destination_pair() {
        for radix in [2usize, 4, 8] {
            let mut net = Omega::new(radix * radix, &cfg(radix));
            let size = net.size();
            for src in 0..size {
                for dst in 0..size {
                    let mut sink = RecSink::default();
                    assert!(net.try_inject(src, pkt(dst, 1, 7)));
                    run_until_idle(&mut net, &mut sink, 100);
                    assert_eq!(sink.delivered.len(), 1, "src={src} dst={dst}");
                    assert_eq!(sink.delivered[0].0, dst, "src={src} dst={dst}");
                }
            }
        }
    }

    #[test]
    fn unloaded_one_word_latency_is_stages_plus_one() {
        // inject at cycle 1 (end of tick), one hop per stage, eject on the
        // last stage's move: for a 2-stage net the packet is delivered on
        // the 3rd tick after injection started.
        let mut net = Omega::new(64, &cfg(8));
        let mut sink = RecSink::default();
        assert!(net.try_inject(5, pkt(40, 1, 0)));
        let mut ticks = 0;
        while !net.is_idle() {
            net.tick(&mut sink);
            ticks += 1;
            assert!(ticks < 20);
        }
        assert_eq!(ticks, 3);
        assert_eq!(sink.delivered.len(), 1);
    }

    #[test]
    fn multiword_packets_arrive_whole_and_in_order() {
        let mut net = Omega::new(16, &cfg(4));
        let mut sink = RecSink::default();
        assert!(net.try_inject(0, pkt(9, 4, 1)));
        assert!(net.try_inject(0, pkt(9, 2, 2)));
        run_until_idle(&mut net, &mut sink, 100);
        assert_eq!(sink.delivered.len(), 2);
        // FIFO per source: addr 1 before addr 2.
        let addr = |p: &Packet| match p.payload {
            Payload::Request(r) => r.addr,
            _ => unreachable!(),
        };
        assert_eq!(addr(&sink.delivered[0].1), 1);
        assert_eq!(addr(&sink.delivered[1].1), 2);
    }

    #[test]
    fn injector_backpressure() {
        let mut net = Omega::new(16, &cfg(4));
        // injector holds 2 packets.
        assert!(net.try_inject(0, pkt(1, 4, 0)));
        assert!(net.try_inject(0, pkt(1, 4, 0)));
        assert!(!net.try_inject(0, pkt(1, 4, 0)));
    }

    #[test]
    fn sink_refusal_blocks_and_later_drains() {
        let mut net = Omega::new(16, &cfg(4));
        let mut sink = RecSink {
            refuse: true,
            ..Default::default()
        };
        assert!(net.try_inject(3, pkt(8, 1, 0)));
        for _ in 0..20 {
            net.tick(&mut sink);
        }
        assert!(sink.delivered.is_empty());
        assert!(!net.is_idle());
        assert!(net.stats().blocked_moves > 0);
        sink.refuse = false;
        run_until_idle(&mut net, &mut sink, 20);
        assert_eq!(sink.delivered.len(), 1);
    }

    #[test]
    fn contention_to_one_destination_serializes() {
        // All 16 sources fire one packet at destination 0; all must arrive,
        // and arrival takes at least 16 word-cycles at the final link.
        let mut net = Omega::new(16, &cfg(4));
        let mut sink = RecSink::default();
        for src in 0..16 {
            assert!(net.try_inject(src, pkt(0, 1, src as u64)));
        }
        let mut ticks = 0;
        while !net.is_idle() {
            net.tick(&mut sink);
            ticks += 1;
            assert!(ticks < 500);
        }
        assert_eq!(sink.delivered.len(), 16);
        assert!(ticks >= 16, "16 packets over one ejection link: {ticks}");
        // Every source's packet arrived exactly once.
        let mut addrs: Vec<u64> = sink
            .delivered
            .iter()
            .map(|(_, p)| match p.payload {
                Payload::Request(r) => r.addr,
                _ => unreachable!(),
            })
            .collect();
        addrs.sort_unstable();
        assert_eq!(addrs, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn disjoint_traffic_proceeds_in_parallel() {
        // A permutation with distinct outputs should take barely longer
        // than a single packet.
        let mut net = Omega::new(16, &cfg(4));
        let mut sink = RecSink::default();
        for src in 0..16 {
            assert!(net.try_inject(src, pkt(src, 1, 0)));
        }
        let mut ticks = 0;
        while !net.is_idle() {
            net.tick(&mut sink);
            ticks += 1;
        }
        assert_eq!(sink.delivered.len(), 16);
        // Identity permutation is conflict-free in an omega network.
        assert!(
            ticks <= 6,
            "identity permutation should not serialize: {ticks}"
        );
    }

    #[test]
    fn route_digits_reconstruct_destination_radix2_and_4() {
        // The flattened route table consumes the destination most
        // significant digit first: digits across the stages must spell
        // the destination back out in base `radix`.
        for radix in [2usize, 4] {
            let net = Omega::new(32, &cfg(radix));
            for dst in 0..net.size() {
                let mut rebuilt = 0usize;
                for stage in 0..net.stages() {
                    rebuilt = rebuilt * radix + net.route_digit(dst, stage);
                }
                assert_eq!(rebuilt, dst, "radix={radix} dst={dst}");
            }
        }
    }

    #[test]
    fn shuffle_table_matches_digit_rotation() {
        // The precomputed shuffle table must equal the closed-form
        // perfect shuffle (rotate base-`radix` digits left).
        for radix in [2usize, 4, 8] {
            let net = Omega::new(32, &cfg(radix));
            let size = net.size();
            for line in 0..size {
                assert_eq!(
                    net.shuffle(line),
                    (line * radix) % size + (line * radix) / size,
                    "radix={radix} line={line}"
                );
            }
        }
    }

    #[test]
    fn wormhole_lock_pins_flattened_lock_arrays() {
        // A 3-word packet from port 0 to destination 0 in a radix-4 net:
        // port 0 injects onto line 0 of stage-0 switch 0 and routes to
        // output subport 0. While body words remain, the flat `locks`/
        // `locked_to` entries must name the pairing; after the tail they
        // must clear, and `rr` must have advanced past the winner.
        let mut net = Omega::new(16, &cfg(4));
        let mut sink = RecSink::default();
        assert!(net.try_inject(0, pkt(0, 3, 7)));
        // Tick until the head has moved through stage 0 but the tail has
        // not (head hop happens on the tick after its injection).
        net.tick(&mut sink); // inject head
        net.tick(&mut sink); // head moves stage 0 -> stage 1; body injects
        assert_eq!(net.locks[0], 0, "output 0 of stage 0 locked to line 0");
        assert_eq!(net.locked_to[0], 0, "line 0 owns output subport 0");
        run_until_idle(&mut net, &mut sink, 50);
        assert_eq!(sink.delivered.len(), 1);
        // Tail passage released every lock in both stages.
        assert!(net.locks.iter().all(|&l| l == NO_LOCK));
        assert!(net.locked_to.iter().all(|&l| l == NO_FRONT));
        // Round-robin advanced past the winning input subport (0 -> 1) at
        // both stages' output 0.
        assert_eq!(net.rr[0], 1);
        assert_eq!(net.rr[net.size], 1);
    }

    #[test]
    fn round_robin_alternates_between_contending_inputs() {
        // Ports 0 and 4 shuffle onto lines 0 and 1 of stage-0 switch 0
        // (radix 4) and fight for output subport 0. The round-robin
        // pointer starts at 0, so line 0 wins the first arbitration, the
        // pointer advances, and the two streams alternate head-for-head.
        let mut net = Omega::new(16, &cfg(4));
        let mut sink = RecSink::default();
        for i in 0..2u64 {
            assert!(net.try_inject(0, pkt(0, 1, 100 + i)));
            assert!(net.try_inject(4, pkt(0, 1, 200 + i)));
        }
        run_until_idle(&mut net, &mut sink, 100);
        let addrs: Vec<u64> = sink
            .delivered
            .iter()
            .map(|(_, p)| match p.payload {
                Payload::Request(r) => r.addr,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![100, 200, 101, 201]);
        assert!(net.stats().arbitration_losses > 0);
    }

    #[test]
    fn stats_account_words() {
        let mut net = Omega::new(16, &cfg(4));
        let mut sink = RecSink::default();
        net.try_inject(2, pkt(11, 3, 0));
        run_until_idle(&mut net, &mut sink, 50);
        let s = net.stats();
        assert_eq!(s.packets_injected, 1);
        assert_eq!(s.packets_delivered, 1);
        // 3 words × (inject + 2 stages) hops.
        assert_eq!(s.words_moved, 9);
    }

    #[test]
    fn doomed_packets_traverse_but_evaporate() {
        // drop_ppm = 1_000_000: every injection is doomed. The packet
        // still consumes an injector slot and link bandwidth but never
        // reaches the sink, and conservation closes through `drops`.
        let mut net = Omega::new(16, &cfg(4));
        net.enable_faults(7, 0xF0, 1_000_000, 0);
        let mut sink = RecSink {
            refuse: true, // a doomed packet must never consult the sink
            ..Default::default()
        };
        assert!(net.try_inject(2, pkt(11, 3, 0)));
        run_until_idle(&mut net, &mut sink, 50);
        let s = net.stats();
        assert_eq!(s.packets_injected, 1);
        assert_eq!(s.drops, 1);
        assert_eq!(s.packets_delivered, 0);
        assert!(sink.delivered.is_empty());
        assert_eq!(net.in_flight_packets(), 0);
        // Bandwidth was spent exactly as for a delivered packet.
        assert_eq!(s.words_moved, 9);
    }

    #[test]
    fn nacked_requests_arrive_flagged() {
        // nack_ppm = 1_000_000 with no drops: every request arrives but
        // carries the corruption flag for the module to bounce.
        let mut net = Omega::new(16, &cfg(4));
        net.enable_faults(7, 0xF0, 0, 1_000_000);
        let mut sink = RecSink::default();
        assert!(net.try_inject(2, pkt(11, 1, 42)));
        run_until_idle(&mut net, &mut sink, 50);
        assert_eq!(net.stats().nacks, 1);
        assert_eq!(sink.delivered.len(), 1);
        match sink.delivered[0].1.payload {
            Payload::Request(r) => assert!(r.nacked),
            _ => unreachable!(),
        }
    }

    #[test]
    fn downed_port_refuses_until_restored() {
        let mut net = Omega::new(16, &cfg(4));
        net.enable_faults(7, 0xF0, 0, 0);
        net.set_port_down(3, true);
        assert_eq!(net.injector_free(3), 0);
        assert!(!net.try_inject(3, pkt(8, 1, 0)));
        assert_eq!(net.stats().link_blocked, 1);
        // Other ports are unaffected.
        assert!(net.try_inject(4, pkt(8, 1, 0)));
        net.set_port_down(3, false);
        assert!(net.try_inject(3, pkt(8, 1, 0)));
        assert_eq!(net.injector_free(3), 1);
    }

    #[test]
    fn zero_rate_faults_change_nothing() {
        // An installed-but-all-zero fault config must behave exactly like
        // a fault-free network.
        let mut plain = Omega::new(16, &cfg(4));
        let mut faulty = Omega::new(16, &cfg(4));
        faulty.enable_faults(99, 0xF0, 0, 0);
        for net in [&mut plain, &mut faulty] {
            let mut sink = RecSink::default();
            for src in 0..16 {
                assert!(net.try_inject(src, pkt(0, 2, src as u64)));
            }
            run_until_idle(net, &mut sink, 500);
            assert_eq!(sink.delivered.len(), 16);
        }
        assert_eq!(plain.stats(), faulty.stats());
    }
}

//! Network packets.
//!
//! Cedar network packets consist of one to four 64-bit words; the first
//! word carries routing control and the memory address (§2 "Global
//! Network"). The simulator accounts for packet length in words when
//! charging link bandwidth, but carries the semantic payload out-of-band
//! in the [`Packet`] struct rather than encoding it into bits.

use crate::ids::CeId;
use crate::memory::sync::SyncInstr;
use crate::time::Cycle;

/// What a reply (or the consumption side of a request) is for. The stream
/// tells the receiving CE which unit the data belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// A direct (non-prefetched) vector element load; `elem` is the element
    /// index within the executing vector instruction.
    Direct { elem: u32 },
    /// A prefetch-unit request; `elem` indexes the prefetch buffer slot and
    /// `fire_seq` identifies which `fire` the request belongs to (stale
    /// replies from an invalidated prefetch are dropped).
    Prefetch { elem: u32, fire_seq: u64 },
    /// A scalar load.
    Scalar,
    /// A synchronization instruction result (Test-And-Set / Test-And-Op).
    Sync,
    /// Acknowledgement of a write (used only for fence tracking; the real
    /// Cedar global memory is weakly ordered and does not acknowledge
    /// individual writes to the CE pipeline).
    WriteAck,
}

/// The operation a request packet asks a memory module to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Read one 64-bit word.
    Read,
    /// Write one 64-bit word.
    Write,
    /// An indivisible synchronization instruction executed by the module's
    /// synchronization processor.
    Sync(SyncInstr),
}

/// A request travelling CE → memory on the forward network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Issuing CE.
    pub ce: CeId,
    /// Operation.
    pub kind: RequestKind,
    /// Global word address.
    pub addr: u64,
    /// Which CE-side unit consumes the reply.
    pub stream: Stream,
    /// Cycle the request entered the network port (for latency monitoring).
    pub issued: Cycle,
    /// Retry-protocol sequence number, echoed in the reply. Zero means
    /// unsequenced: faults disabled, or an untracked (prefetch) stream.
    pub seq: u64,
    /// Set by fault injection when the request was corrupted in flight:
    /// the module must NACK it instead of performing the operation.
    pub nacked: bool,
    /// Causal-tracing journey id, echoed into the reply so every hop of a
    /// sampled access can be stamped end-to-end. Zero means untraced —
    /// the only value that ever appears when tracing is off.
    pub trace: u64,
}

/// A reply travelling memory → CE on the reverse network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReply {
    /// Destination CE.
    pub ce: CeId,
    /// Which CE-side unit consumes this reply.
    pub stream: Stream,
    /// Address the reply answers.
    pub addr: u64,
    /// Result value for sync operations (old value, or 1/0 test outcome in
    /// the low bit — see [`SyncInstr`](crate::memory::sync::SyncInstr)).
    pub value: i64,
    /// Cycle the original request entered the network.
    pub req_issued: Cycle,
    /// Sequence number echoed from the request (zero when unsequenced).
    pub seq: u64,
    /// True when the module refused the operation (offline, or the
    /// request arrived corrupted): no side effect was performed and
    /// `value` is meaningless; the CE's retry controller resends.
    pub nack: bool,
    /// Causal-tracing journey id echoed from the request (zero when the
    /// access is untraced).
    pub trace: u64,
}

/// Packet payload: either a request (forward net) or a reply (reverse net).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Payload {
    Request(MemRequest),
    Reply(MemReply),
}

/// One network packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Destination port (memory module for forward, CE for reverse).
    pub dst: usize,
    /// Length in 64-bit words including the routing/header word (1..=4).
    pub words: u8,
    /// Semantic payload.
    pub payload: Payload,
}

impl Packet {
    /// A 1-word read-request packet (header word carries the address).
    pub fn read_request(dst: usize, req: MemRequest) -> Packet {
        Packet {
            dst,
            words: 1,
            payload: Payload::Request(req),
        }
    }

    /// A 2-word write-request packet (header + data).
    pub fn write_request(dst: usize, req: MemRequest) -> Packet {
        Packet {
            dst,
            words: 2,
            payload: Payload::Request(req),
        }
    }

    /// A 1-word sync-request packet (the operand rides in the header in the
    /// real machine's memory-mapped encoding).
    pub fn sync_request(dst: usize, req: MemRequest) -> Packet {
        Packet {
            dst,
            words: 1,
            payload: Payload::Request(req),
        }
    }

    /// A 2-word read/sync reply (header + data).
    pub fn reply(dst: usize, reply: MemReply) -> Packet {
        Packet {
            dst,
            words: 2,
            payload: Payload::Reply(reply),
        }
    }

    /// A 1-word write acknowledgement.
    pub fn write_ack(dst: usize, reply: MemReply) -> Packet {
        Packet {
            dst,
            words: 1,
            payload: Payload::Reply(reply),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CeId;

    fn req() -> MemRequest {
        MemRequest {
            ce: CeId(0),
            kind: RequestKind::Read,
            addr: 42,
            stream: Stream::Scalar,
            issued: Cycle(0),
            seq: 0,
            nacked: false,
            trace: 0,
        }
    }

    #[test]
    fn packet_word_counts_match_paper_format() {
        assert_eq!(Packet::read_request(3, req()).words, 1);
        assert_eq!(Packet::write_request(3, req()).words, 2);
        let rep = MemReply {
            ce: CeId(0),
            stream: Stream::Scalar,
            addr: 42,
            value: 0,
            req_issued: Cycle(0),
            seq: 0,
            nack: false,
            trace: 0,
        };
        assert_eq!(Packet::reply(0, rep).words, 2);
        assert_eq!(Packet::write_ack(0, rep).words, 1);
        // All packets within the 1..=4 word format of the paper.
        for p in [
            Packet::read_request(3, req()),
            Packet::write_request(3, req()),
            Packet::reply(0, rep),
            Packet::write_ack(0, rep),
        ] {
            assert!((1..=4).contains(&p.words));
        }
    }
}

//! Strongly-typed identifiers for machine components.
//!
//! Cedar has three natural coordinate systems: the flat *system* view
//! (32 CEs, 32 global-memory modules, 32 network ports), the *cluster*
//! view (4 clusters of 8 CEs), and the *memory* view (modules, pages).
//! Newtypes keep these from being mixed up (C-NEWTYPE).

use core::fmt;

/// A system-wide computational element index (`0..n_clusters * ces_per_cluster`).
///
/// # Examples
///
/// ```
/// use cedar_machine::ids::{CeId, ClusterId};
/// let ce = CeId(13);
/// assert_eq!(ce.cluster(8), ClusterId(1));
/// assert_eq!(ce.index_in_cluster(8), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CeId(pub usize);

impl CeId {
    /// The cluster this CE belongs to, given the machine's CEs-per-cluster.
    pub fn cluster(self, ces_per_cluster: usize) -> ClusterId {
        ClusterId(self.0 / ces_per_cluster)
    }

    /// The CE's index within its cluster.
    pub fn index_in_cluster(self, ces_per_cluster: usize) -> usize {
        self.0 % ces_per_cluster
    }

    /// The global-network port this CE injects into (one port per CE).
    pub fn port(self) -> PortId {
        PortId(self.0)
    }
}

impl fmt::Display for CeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CE{}", self.0)
    }
}

/// A cluster index (`0..n_clusters`). Each cluster is one Alliant FX/8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub usize);

impl ClusterId {
    /// System-wide id of the `i`-th CE in this cluster.
    pub fn ce(self, i: usize, ces_per_cluster: usize) -> CeId {
        CeId(self.0 * ces_per_cluster + i)
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

/// A port on one of the two unidirectional global networks.
///
/// Port `i` on the forward network is fed by CE `i`; port `j` on the
/// output side reaches global-memory module `j` (and symmetrically on
/// the reverse network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub usize);

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port{}", self.0)
    }
}

/// A global-memory module index. Global memory is double-word (8-byte)
/// interleaved across modules, so word `w` lives in module `w % n_modules`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub usize);

impl ModuleId {
    /// The reverse-network port this module injects replies into.
    pub fn port(self) -> PortId {
        PortId(self.0)
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mod{}", self.0)
    }
}

/// A virtual-memory page number (4 KB pages, i.e. 512 64-bit words).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{}", self.0)
    }
}

/// Identifier of a machine-level shared loop-scheduling counter.
///
/// Counters back self-scheduled parallel loops: `Cluster` counters live on
/// a cluster's concurrency control bus, `Global` counters live in a
/// global-memory synchronization processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(pub usize);

impl fmt::Display for CounterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctr{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_cluster_mapping_round_trips() {
        let ces_per_cluster = 8;
        for c in 0..4 {
            for i in 0..ces_per_cluster {
                let ce = ClusterId(c).ce(i, ces_per_cluster);
                assert_eq!(ce.cluster(ces_per_cluster), ClusterId(c));
                assert_eq!(ce.index_in_cluster(ces_per_cluster), i);
            }
        }
    }

    #[test]
    fn ce_port_is_identity() {
        assert_eq!(CeId(31).port(), PortId(31));
        assert_eq!(ModuleId(7).port(), PortId(7));
    }

    #[test]
    fn display_forms() {
        assert_eq!(CeId(3).to_string(), "CE3");
        assert_eq!(ClusterId(2).to_string(), "cluster2");
        assert_eq!(PortId(9).to_string(), "port9");
        assert_eq!(ModuleId(1).to_string(), "mod1");
        assert_eq!(PageId(77).to_string(), "page77");
        assert_eq!(CounterId(4).to_string(), "ctr4");
    }
}

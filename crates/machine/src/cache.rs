//! The shared, interleaved cluster cache.
//!
//! Each cluster's eight CEs share a 512 KB physically-addressed cache with
//! 32-byte lines, organized as four interleaved banks. The cache is
//! write-back and lockup-free, allowing each CE two outstanding misses;
//! writes do not stall a CE. Its bandwidth is eight 64-bit words per
//! instruction cycle — one input stream per vector unit — twice the
//! cluster-memory bandwidth behind it (§2 "Alliant clusters").
//!
//! The model tracks real tags (set-associative, LRU) and bank occupancy,
//! but not data values: the simulator is a timing model, and numeric
//! correctness is exercised by the pure-Rust kernels in `cedar-kernels`.

use crate::config::CacheConfig;
use crate::memory::cluster_mem::ClusterMemory;
use crate::time::Cycle;

/// Outcome of presenting one word access to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// Hit: the word is available at the given cycle.
    Ready { at: Cycle },
    /// Miss: a line fill has been (or already was) scheduled; the word is
    /// available at the given cycle.
    Pending { at: Cycle },
    /// Structural stall (bank busy this cycle, or the CE is out of miss
    /// slots): retry next cycle.
    Stall,
}

impl CacheAccess {
    /// The completion time, if the access was accepted.
    pub fn ready_at(self) -> Option<Cycle> {
        match self {
            CacheAccess::Ready { at } | CacheAccess::Pending { at } => Some(at),
            CacheAccess::Stall => None,
        }
    }
}

/// Statistics for one cluster cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Accesses rejected for a busy bank.
    pub bank_stalls: u64,
    /// Accesses rejected because the CE had two misses outstanding.
    pub mshr_stalls: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
    /// Valid lines replaced by a fill (dirty or clean).
    pub evictions: u64,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    lru: u64,
    /// Cycle the line's fill arrives; hits before this wait for it. A
    /// line resident since before `fill_at` was reached behaves as
    /// filled, so no separate pending set is consulted on the hit path.
    fill_at: Cycle,
}

/// The shared cluster cache, backed by its cluster memory.
#[derive(Debug)]
pub struct ClusterCache {
    line_words: u64,
    sets: usize,
    assoc: usize,
    banks: usize,
    /// Shift/mask decomposition of the line/bank/set arithmetic, present
    /// when `line_words`, `banks` and `sets` are all powers of two (true
    /// for every Cedar-shaped geometry). The address split runs once per
    /// simulated word, so three integer divisions matter here.
    pow2: Option<Pow2Geometry>,
    words_per_bank_cycle: u32,
    hit_latency: u64,
    max_misses_per_ce: u32,
    /// Way array, flattened row-major: `tags[set * assoc + way]`.
    tags: Vec<Option<Line>>,
    lru_clock: u64,
    /// Outstanding fills per CE (lockup-free miss slots).
    ce_misses: Vec<Vec<(u64, Cycle)>>,
    /// Bank usage accounting for the current cycle.
    bank_cycle: Cycle,
    bank_used: Vec<u32>,
    mem: ClusterMemory,
    stats: CacheStats,
}

#[derive(Debug, Clone, Copy)]
struct Pow2Geometry {
    line_shift: u32,
    bank_mask: u64,
    set_mask: u64,
    set_shift: u32,
}

impl ClusterCache {
    /// Build a cache for a cluster of `ces` processors, owning its cluster
    /// memory `mem`.
    pub fn new(cfg: &CacheConfig, ces: usize, mem: ClusterMemory) -> ClusterCache {
        let sets = cfg.sets();
        let line_words = cfg.line_words() as u64;
        let banks = cfg.banks;
        let pow2 =
            (line_words.is_power_of_two() && banks.is_power_of_two() && sets.is_power_of_two())
                .then(|| Pow2Geometry {
                    line_shift: line_words.trailing_zeros(),
                    bank_mask: banks as u64 - 1,
                    set_mask: sets as u64 - 1,
                    set_shift: sets.trailing_zeros(),
                });
        ClusterCache {
            line_words,
            sets,
            assoc: cfg.associativity,
            banks,
            pow2,
            words_per_bank_cycle: (cfg.words_per_cycle / cfg.banks as u32).max(1),
            hit_latency: u64::from(cfg.hit_latency),
            max_misses_per_ce: cfg.max_outstanding_misses_per_ce,
            tags: vec![None; sets * cfg.associativity],
            lru_clock: 0,
            ce_misses: vec![Vec::new(); ces],
            bank_cycle: Cycle::ZERO,
            bank_used: vec![0; cfg.banks],
            mem,
            stats: CacheStats::default(),
        }
    }

    /// Split a word address into (line address, bank, set, tag).
    #[inline]
    fn split(&self, word_addr: u64) -> (u64, usize, usize, u64) {
        match self.pow2 {
            Some(g) => {
                let line_addr = word_addr >> g.line_shift;
                (
                    line_addr,
                    (line_addr & g.bank_mask) as usize,
                    (line_addr & g.set_mask) as usize,
                    line_addr >> g.set_shift,
                )
            }
            None => {
                let line_addr = word_addr / self.line_words;
                (
                    line_addr,
                    (line_addr % self.banks as u64) as usize,
                    (line_addr % self.sets as u64) as usize,
                    line_addr / self.sets as u64,
                )
            }
        }
    }

    /// Present one word access from CE `ce` (index within the cluster).
    ///
    /// `write` accesses allocate on miss and mark the line dirty; they
    /// otherwise share the hit/miss timing of reads (the CE does not wait
    /// for writes, which the CE engine models by ignoring the completion
    /// time of write accesses beyond bank occupancy).
    pub fn access(&mut self, now: Cycle, ce: usize, word_addr: u64, write: bool) -> CacheAccess {
        self.roll_cycle(now);
        self.expire_misses(now, ce);

        let (line_addr, bank, set, tag) = self.split(word_addr);
        if self.bank_used[bank] >= self.words_per_bank_cycle {
            self.stats.bank_stalls += 1;
            return CacheAccess::Stall;
        }

        // Hit?
        let base = set * self.assoc;
        let ways = &self.tags[base..base + self.assoc];
        if let Some((way, line)) = ways
            .iter()
            .enumerate()
            .find_map(|(w, l)| l.filter(|l| l.tag == tag).map(|l| (w, l)))
        {
            self.bank_used[bank] += 1;
            self.touch(base + way, write);
            // A hit on a line still being filled waits for the fill.
            if now < line.fill_at {
                return CacheAccess::Pending {
                    at: line.fill_at + self.hit_latency,
                };
            }
            self.stats.hits += 1;
            return CacheAccess::Ready {
                at: now + self.hit_latency,
            };
        }

        // Miss: need a free miss slot for this CE.
        if self.ce_misses[ce].len() >= self.max_misses_per_ce as usize {
            self.stats.mshr_stalls += 1;
            return CacheAccess::Stall;
        }
        self.bank_used[bank] += 1;
        self.stats.misses += 1;

        // Victim selection and write-back.
        let way = self.victim(set);
        if let Some(old) = self.tags[base + way] {
            self.stats.evictions += 1;
            if old.dirty {
                self.mem.writeback(now, self.line_words as u32);
                self.stats.writebacks += 1;
            }
        }
        self.lru_clock += 1;
        let arrive = self.mem.fill(now, self.line_words as u32);
        self.tags[base + way] = Some(Line {
            tag,
            dirty: write,
            lru: self.lru_clock,
            fill_at: arrive,
        });
        self.ce_misses[ce].push((line_addr, arrive));
        CacheAccess::Pending {
            at: arrive + self.hit_latency,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Fold the tag-array state (tag, dirty bit and LRU stamp of every
    /// way, in set/way order) into `h` (see `Machine::memory_digest`).
    pub(crate) fn digest(&self, h: &mut impl std::hash::Hasher) {
        for way in &self.tags {
            match way {
                Some(line) => {
                    h.write_u8(1);
                    h.write_u64(line.tag);
                    h.write_u8(u8::from(line.dirty));
                    h.write_u64(line.lru);
                }
                None => h.write_u8(0),
            }
        }
    }

    /// Statistics of the backing cluster memory.
    pub fn mem_stats(&self) -> crate::memory::cluster_mem::ClusterMemStats {
        self.mem.stats()
    }

    /// Serialize the tag array, miss slots, bank occupancy, backing
    /// memory and statistics. Geometry (sets, associativity, banks) is
    /// config-derived and checked structurally on restore.
    pub(crate) fn save_state(&self, w: &mut crate::snapshot::SnapWriter) {
        w.tag(b"CACH");
        w.seq(self.tags.iter(), |w, way| {
            w.opt(way.as_ref(), |w, line| {
                w.u64(line.tag);
                w.bool(line.dirty);
                w.u64(line.lru);
                w.cycle(line.fill_at);
            });
        });
        w.u64(self.lru_clock);
        w.seq(self.ce_misses.iter(), |w, slots| {
            w.seq(slots.iter(), |w, (line, at)| {
                w.u64(*line);
                w.cycle(*at);
            });
        });
        w.cycle(self.bank_cycle);
        w.seq(self.bank_used.iter(), |w, used| w.u32(*used));
        self.mem.save_state(w);
        let s = &self.stats;
        for v in [
            s.hits,
            s.misses,
            s.bank_stalls,
            s.mshr_stalls,
            s.writebacks,
            s.evictions,
        ] {
            w.u64(v);
        }
    }

    pub(crate) fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapReader,
    ) -> crate::snapshot::SnapResult<()> {
        r.tag(b"CACH")?;
        let ways = self.tags.len();
        r.seq_exact(ways, |r, i| {
            self.tags[i] = r.opt(|r| {
                Ok(Line {
                    tag: r.u64()?,
                    dirty: r.bool()?,
                    lru: r.u64()?,
                    fill_at: r.cycle()?,
                })
            })?;
            Ok(())
        })?;
        self.lru_clock = r.u64()?;
        let ces = self.ce_misses.len();
        r.seq_exact(ces, |r, i| {
            self.ce_misses[i] = r.seq(|r| Ok((r.u64()?, r.cycle()?)))?;
            Ok(())
        })?;
        self.bank_cycle = r.cycle()?;
        let banks = self.bank_used.len();
        r.seq_exact(banks, |r, i| {
            self.bank_used[i] = r.u32()?;
            Ok(())
        })?;
        self.mem.load_state(r)?;
        self.stats = CacheStats {
            hits: r.u64()?,
            misses: r.u64()?,
            bank_stalls: r.u64()?,
            mshr_stalls: r.u64()?,
            writebacks: r.u64()?,
            evictions: r.u64()?,
        };
        Ok(())
    }

    fn roll_cycle(&mut self, now: Cycle) {
        if now != self.bank_cycle {
            self.bank_cycle = now;
            self.bank_used.iter_mut().for_each(|b| *b = 0);
        }
    }

    fn expire_misses(&mut self, now: Cycle, ce: usize) {
        let slots = &mut self.ce_misses[ce];
        if !slots.is_empty() {
            slots.retain(|&(_, at)| at > now);
        }
    }

    /// Bump the LRU stamp (and dirty bit) of the resident line at a flat
    /// way index.
    fn touch(&mut self, idx: usize, write: bool) {
        self.lru_clock += 1;
        if let Some(line) = &mut self.tags[idx] {
            line.lru = self.lru_clock;
            line.dirty |= write;
        }
    }

    fn victim(&self, set: usize) -> usize {
        let ways = &self.tags[set * self.assoc..set * self.assoc + self.assoc];
        // Prefer an invalid way, else the least recently used.
        if let Some(w) = ways.iter().position(Option::is_none) {
            return w;
        }
        ways.iter()
            .enumerate()
            .min_by_key(|(_, l)| l.map(|l| l.lru).unwrap_or(0))
            .map(|(w, _)| w)
            .expect("cache sets are non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, ClusterMemoryConfig};

    fn cache() -> ClusterCache {
        ClusterCache::new(
            &CacheConfig::cedar(),
            8,
            ClusterMemory::new(&ClusterMemoryConfig::cedar()),
        )
    }

    #[test]
    fn miss_then_hit_same_line() {
        let mut c = cache();
        let a = c.access(Cycle(0), 0, 100, false);
        assert!(matches!(a, CacheAccess::Pending { .. }));
        let at = a.ready_at().unwrap();
        // After the fill arrives, the same line hits.
        let b = c.access(at + 1, 0, 101, false);
        match b {
            CacheAccess::Ready { at: t } => assert_eq!(t, at + 1 + 2),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn two_miss_limit_per_ce() {
        let mut c = cache();
        // Three distinct lines in the same cycle: third stalls on MSHRs.
        assert!(matches!(
            c.access(Cycle(0), 0, 0, false),
            CacheAccess::Pending { .. }
        ));
        assert!(matches!(
            c.access(Cycle(0), 0, 1024, false),
            CacheAccess::Pending { .. }
        ));
        // Use a different bank to avoid the bank limit masking the MSHR limit:
        // line of 2048/4=512 -> bank 0; pick 4*4096+8 etc. Simply advance a
        // cycle so banks are free but misses still outstanding.
        let r = c.access(Cycle(1), 0, 2048, false);
        assert_eq!(r, CacheAccess::Stall);
        assert!(c.stats().mshr_stalls >= 1);
        // Another CE still has slots.
        assert!(matches!(
            c.access(Cycle(2), 1, 4096, false),
            CacheAccess::Pending { .. }
        ));
    }

    #[test]
    fn bank_conflicts_stall_within_a_cycle() {
        let mut c = cache();
        // Warm a line, then hammer the same bank beyond 2 words/cycle.
        let at = c.access(Cycle(0), 0, 0, false).ready_at().unwrap();
        let now = at + 10;
        assert!(matches!(
            c.access(now, 0, 0, false),
            CacheAccess::Ready { .. }
        ));
        assert!(matches!(
            c.access(now, 1, 1, false),
            CacheAccess::Ready { .. }
        ));
        // Third access to bank 0 in the same cycle stalls.
        assert_eq!(c.access(now, 2, 2, false), CacheAccess::Stall);
        assert!(c.stats().bank_stalls >= 1);
        // Next cycle it goes through.
        assert!(matches!(
            c.access(now + 1, 2, 2, false),
            CacheAccess::Ready { .. }
        ));
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut cfg = CacheConfig::cedar();
        cfg.capacity_bytes = 2 * 32 * 2; // 2 sets × 2 ways × 1 line
        let mut c = ClusterCache::new(&cfg, 1, ClusterMemory::new(&ClusterMemoryConfig::cedar()));
        // Write line A (set 0), then fill two more lines mapping to set 0
        // to evict it.
        let mut now = Cycle(0);
        let wa = c.access(now, 0, 0, true); // line 0, set 0
        now = wa.ready_at().unwrap() + 1;
        let wb = c.access(now, 0, 2 * 4, false); // line 2, set 0
        now = wb.ready_at().unwrap() + 1;
        let wc = c.access(now, 0, 4 * 4, false); // line 4, set 0 -> evicts dirty line 0
        now = wc.ready_at().unwrap() + 1;
        let _ = now;
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn distinct_ces_share_the_cache_contents() {
        let mut c = cache();
        let at = c.access(Cycle(0), 0, 64, false).ready_at().unwrap();
        // CE 5 hits on the line CE 0 brought in.
        assert!(matches!(
            c.access(at + 1, 5, 65, false),
            CacheAccess::Ready { .. }
        ));
    }

    #[test]
    fn pending_line_shared_by_second_accessor() {
        let mut c = cache();
        let a = c.access(Cycle(0), 0, 0, false).ready_at().unwrap();
        // Another CE asks for the same line while in flight: no second fill.
        let b = c.access(Cycle(1), 1, 1, false).ready_at().unwrap();
        assert_eq!(c.mem_stats().fills, 1);
        assert!(b.saturating_since(a) <= 2 && a.saturating_since(b) <= 2);
    }
}

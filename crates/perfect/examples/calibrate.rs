//! Calibration sweep: every Perfect code's measured KAP/automatable
//! speedups, ablation sensitivities and hand-optimized times against the
//! reconstruction targets. Used when retuning the workload models.

use cedar_perfect::codes::{targets, CodeName};
use cedar_perfect::run::{CodeStudy, Variant};

fn main() {
    println!(
        "{:8} {:>8} {:>12} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "code", "serial_s", "kap (tgt)", "auto (tgt)", "auto MFLOPS", "nosync", "nopref", "hand_s"
    );
    for code in CodeName::ALL {
        let t = targets(code);
        let study = CodeStudy::new(code, 4).unwrap();
        let kap = study.run(Variant::Kap).unwrap().unwrap();
        let auto = study.run(Variant::Automatable).unwrap().unwrap();
        let nosync = study.run(Variant::AutoNoSync).unwrap().unwrap();
        let nopref = study.run(Variant::AutoNoPrefetch).unwrap().unwrap();
        let hand = study.run(Variant::Hand).unwrap();
        println!(
            "{:8} {:>8.0} {:>5.1}({:>4.1}) {:>6.1}({:>4.1}) {:>12.2} {:>10.2} {:>10.2} {:>8}",
            code.to_string(),
            t.serial_seconds,
            kap.speedup,
            t.kap_speedup,
            auto.speedup,
            t.auto_speedup,
            auto.mflops,
            nosync.seconds / auto.seconds,
            nopref.seconds / nosync.seconds,
            hand.map(|h| format!(
                "{:.0}({})",
                h.seconds,
                t.hand_seconds
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_default()
            ))
            .unwrap_or_default()
        );
    }
}

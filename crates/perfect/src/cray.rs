//! Analytic models of the Cray comparison machines.
//!
//! The paper quotes Cray YMP/8 and Cray 1 results rather than measuring
//! them; this module *derives* those reference numbers from first
//! principles so the baselines are implemented, not just transcribed: a
//! classic vector-machine performance model (Hockney's `r∞`/`n½` form
//! with an Amdahl split between vector and scalar work) plus an
//! autotasking model (parallel fraction + per-parallel-region overhead).
//! Each Perfect code gets a characterization (vectorized fraction, mean
//! vector length, autotaskable fraction) consistent with its behaviour in
//! the Cedar model; the derived MFLOPS and 8-CPU speedups are validated
//! against the reference dataset in [`reference`](crate::reference).

use crate::codes::CodeName;

/// A register vector machine in the Cray mould.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VectorMachine {
    /// Machine name.
    pub name: &'static str,
    /// Clock period in nanoseconds.
    pub clock_ns: f64,
    /// Peak floating-point operations per cycle per CPU with chaining.
    pub flops_per_cycle: f64,
    /// Hockney `n½`: the vector length achieving half of `r∞`.
    pub n_half: f64,
    /// Sustained scalar MFLOPS per CPU.
    pub scalar_mflops: f64,
    /// CPUs available to autotasking.
    pub cpus: u32,
    /// Per-parallel-region overhead, in microseconds, charged per
    /// autotasked region invocation.
    pub region_overhead_us: f64,
}

impl VectorMachine {
    /// The Cray Y-MP/8: 6 ns clock, two functional-unit results per clock
    /// with chaining, eight CPUs.
    pub fn ymp8() -> VectorMachine {
        VectorMachine {
            name: "Cray Y-MP/8",
            clock_ns: 6.0,
            flops_per_cycle: 2.0,
            n_half: 40.0,
            scalar_mflops: 11.0,
            cpus: 8,
            region_overhead_us: 30.0,
        }
    }

    /// The Cray 1 (with a modern compiler): 12.5 ns clock, single
    /// processor, no chaining of loads with both arithmetic units —
    /// modelled as a lower flops-per-cycle.
    pub fn cray1() -> VectorMachine {
        VectorMachine {
            name: "Cray 1",
            clock_ns: 12.5,
            flops_per_cycle: 1.2,
            n_half: 20.0,
            scalar_mflops: 4.0,
            cpus: 1,
            region_overhead_us: 0.0,
        }
    }

    /// Peak vector MFLOPS per CPU (`r∞`).
    pub fn r_inf(&self) -> f64 {
        self.flops_per_cycle / (self.clock_ns * 1e-3)
    }

    /// Sustained vector MFLOPS at mean vector length `n` (Hockney):
    /// `r∞ · n / (n + n½)`.
    pub fn vector_mflops(&self, mean_vector_len: f64) -> f64 {
        self.r_inf() * mean_vector_len / (mean_vector_len + self.n_half)
    }

    /// Single-CPU MFLOPS of a code: Amdahl over its vector/scalar split,
    /// with the code's scalar efficiency (memory-bound scalar code runs
    /// below the machine's nominal scalar rate).
    pub fn code_mflops(&self, ch: &CodeCharacter) -> f64 {
        let v = ch.vector_frac;
        let rv = self.vector_mflops(ch.mean_vector_len);
        let rs = self.scalar_mflops * ch.scalar_eff;
        1.0 / (v / rv + (1.0 - v) / rs)
    }

    /// Autotasked speedup on all CPUs: Amdahl over the parallel fraction
    /// with per-region overhead diluting fine-grained codes (regions per
    /// second of serial execution given by `ch.regions_per_second`).
    pub fn autotask_speedup(&self, ch: &CodeCharacter) -> f64 {
        if self.cpus <= 1 {
            return 1.0;
        }
        let p = ch.parallel_frac;
        let overhead_frac =
            ch.regions_per_second * self.region_overhead_us * 1e-6 * f64::from(self.cpus - 1);
        1.0 / ((1.0 - p) + p / f64::from(self.cpus) + overhead_frac)
    }
}

/// How a Perfect code behaves on a classic vector machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeCharacter {
    /// Fraction of flops the vectorizer handles.
    pub vector_frac: f64,
    /// Mean vector length of the vectorized loops.
    pub mean_vector_len: f64,
    /// Fraction of flops in autotaskable regions.
    pub parallel_frac: f64,
    /// Autotasked region invocations per second of serial execution
    /// (granularity of the parallel regions).
    pub regions_per_second: f64,
    /// Scalar efficiency: fraction of the machine's nominal scalar rate
    /// this code's scalar portions sustain (pointer chasing and
    /// irregular access run below it).
    pub scalar_eff: f64,
}

/// The characterization of each Perfect code on a Cray-class machine,
/// consistent with the Cedar model's dependence structure (codes that
/// need privatization on Cedar are the ones autotasking cannot split
/// either; SPICE/TRACK barely vectorize anywhere).
pub fn character(code: CodeName) -> CodeCharacter {
    use CodeName::*;
    let (v, len, p, rps, se) = match code {
        Adm => (0.35, 40.0, 0.20, 900.0, 1.0),
        Arc2d => (0.91, 120.0, 0.65, 500.0, 1.0),
        Bdna => (0.60, 60.0, 0.25, 900.0, 1.0),
        Dyfesm => (0.70, 25.0, 0.45, 1800.0, 1.0),
        Flo52 => (0.92, 110.0, 0.68, 600.0, 1.0),
        Mdg => (0.72, 70.0, 0.10, 400.0, 1.0),
        Mg3d => (0.82, 150.0, 0.30, 500.0, 1.0),
        Ocean => (0.60, 50.0, 0.40, 1500.0, 1.0),
        Qcd => (0.10, 16.0, 0.10, 1500.0, 0.70),
        Spec77 => (0.76, 70.0, 0.48, 900.0, 1.0),
        Spice => (0.10, 8.0, 0.02, 3000.0, 0.60),
        Track => (0.15, 10.0, 0.15, 2500.0, 0.75),
        Trfd => (0.86, 90.0, 0.72, 600.0, 1.0),
    };
    CodeCharacter {
        vector_frac: v,
        mean_vector_len: len,
        parallel_frac: p,
        regions_per_second: rps,
        scalar_eff: se,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{cray1_mflops, ymp};

    #[test]
    fn ymp_peak_rates() {
        let m = VectorMachine::ymp8();
        // r_inf = 2 / 6ns = 333 MFLOPS per CPU.
        assert!((m.r_inf() - 333.3).abs() < 1.0);
        // Short vectors halve it.
        assert!((m.vector_mflops(40.0) - m.r_inf() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn derived_ymp_mflops_track_the_reference_dataset() {
        let m = VectorMachine::ymp8();
        for code in CodeName::ALL {
            let derived = m.code_mflops(&character(code));
            let reference = ymp(code).mflops;
            let ratio = derived / reference;
            assert!(
                (0.75..=1.35).contains(&ratio),
                "{code}: derived {derived:.1} vs reference {reference:.1}"
            );
        }
    }

    #[test]
    fn derived_ymp_speedups_track_the_reference_dataset() {
        let m = VectorMachine::ymp8();
        for code in CodeName::ALL {
            let derived = m.autotask_speedup(&character(code));
            let reference = ymp(code).auto_speedup;
            assert!(
                (derived - reference).abs() <= 0.8 + 0.25 * reference,
                "{code}: derived {derived:.2} vs reference {reference:.2}"
            );
        }
    }

    #[test]
    fn cray1_dataset_is_the_model() {
        // The Cray 1 reference numbers are generated by this model.
        let m = VectorMachine::cray1();
        for code in CodeName::ALL {
            let derived = m.code_mflops(&character(code));
            assert!((derived - cray1_mflops(code)).abs() < 1e-9, "{code}");
        }
    }

    #[test]
    fn cray1_model_satisfies_table5_constraints() {
        use cedar_methodology_free::instability;
        let rates: Vec<f64> = CodeName::ALL
            .iter()
            .map(|&c| VectorMachine::cray1().code_mflops(&character(c)))
            .collect();
        let in2 = instability(&rates, 2);
        // Paper: In(13,2) = 10.9.
        assert!((7.0..=13.0).contains(&in2), "In(13,2) = {in2:.1}");
    }

    /// Minimal local instability (min/max after best exclusions) to avoid
    /// a circular dev-dependency on cedar-methodology.
    mod cedar_methodology_free {
        pub fn instability(perf: &[f64], e: usize) -> f64 {
            let mut v = perf.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut best = f64::INFINITY;
            for lo in 0..=e {
                let hi = e - lo;
                let inst = v[v.len() - 1 - hi] / v[lo];
                if inst < best {
                    best = inst;
                }
            }
            best
        }
    }

    #[test]
    fn cray1_never_speeds_up() {
        let m = VectorMachine::cray1();
        for code in CodeName::ALL {
            assert_eq!(m.autotask_speedup(&character(code)), 1.0);
        }
    }

    #[test]
    fn vector_length_sensitivity() {
        let m = VectorMachine::ymp8();
        assert!(m.vector_mflops(200.0) > m.vector_mflops(20.0));
        // Very long vectors approach r_inf.
        assert!(m.vector_mflops(10_000.0) > 0.99 * m.r_inf());
    }
}

//! # cedar-perfect
//!
//! The Perfect Benchmarks® side of the Cedar reproduction: workload
//! models of the thirteen codes ([`codes`], [`model`]), a runner
//! producing every Table 3/Table 4 configuration on the simulated machine
//! ([`run`]), and the published Cray YMP/8, Cray 1 and CM-5 reference
//! datasets the paper compares against ([`reference`](crate::reference)).
//!
//! The real Perfect codes are tens of thousands of lines of Fortran with
//! proprietary inputs that ran minutes to hours on 1990 hardware. The
//! reproduction substitutes calibrated workload *models*: each code is a
//! weighted set of loop families whose dependence structure, granularity
//! and memory behaviour match the paper's description, scaled down so the
//! cycle-level simulator can execute them (rates and speedups are
//! scale-invariant; times are reported at paper scale).
//!
//! ## Example
//!
//! ```no_run
//! use cedar_perfect::codes::CodeName;
//! use cedar_perfect::run::{CodeStudy, Variant};
//!
//! # fn main() -> Result<(), cedar_machine::MachineError> {
//! let study = CodeStudy::new(CodeName::Trfd, 4)?;
//! let auto = study.run(Variant::Automatable)?.unwrap();
//! println!(
//!     "TRFD automatable: {:.1}s, {:.1} MFLOPS, {:.1}x",
//!     auto.seconds, auto.mflops, auto.speedup
//! );
//! # Ok(())
//! # }
//! ```

pub mod codes;
pub mod cray;
pub mod model;
pub mod reference;
pub mod run;

pub use codes::{hand_spec, spec, targets, CodeName, CodeTargets};
pub use cray::{character, CodeCharacter, VectorMachine};
pub use model::{CodeSpec, Component, ParClass};
pub use run::{study_code, CodeRun, CodeStudy, Variant};

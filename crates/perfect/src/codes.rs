//! The thirteen Perfect Benchmarks® as Cedar workload models.
//!
//! Each code is a [`CodeSpec`] whose components were calibrated against
//! the paper's narrative and reported numbers (Table 3 prose, Table 4,
//! §3.3/§4.2): which codes the 1988 KAP already handled (ARC2D, FLO52),
//! which needed array privatization and the other automatable transforms,
//! which are dominated by scalar access (TRACK) or serial semantics
//! (QCD's random-number generator, SPICE), where formatted I/O dominates
//! (BDNA), where multicluster barrier sequences bite (FLO52), and where
//! limited parallelism makes prefetch matter most (DYFESM). The exact
//! Table 3 figures are not all legible in the surviving scan; the
//! [`CodeTargets`] next to each spec record the reconstruction this model
//! is calibrated to, and EXPERIMENTS.md documents the provenance.
//!
//! Hand-optimized variants ([`CodeSpec`] returned by [`hand_spec`])
//! implement the §4.2 "Hand Optimization" changes: BDNA's unformatted
//! I/O, ARC2D's removal of unnecessary computation plus aggressive data
//! distribution, FLO52's barrier restructuring, DYFESM's reshaped data
//! structures and algorithm change, TRFD's cache/vector kernels and
//! distributed-memory version, QCD's hand-coded parallel random-number
//! generator, and SPICE's algorithmic overhaul.

use cedar_fortran::ir::{BodyMix, Transform};
use cedar_xylem::io::{IoMode, IoModel};

use crate::model::{CodeSpec, Component, ParClass};

/// The thirteen Perfect codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CodeName {
    Adm,
    Arc2d,
    Bdna,
    Dyfesm,
    Flo52,
    Mdg,
    Mg3d,
    Ocean,
    Qcd,
    Spec77,
    Spice,
    Track,
    Trfd,
}

impl CodeName {
    /// All codes, in the customary order.
    pub const ALL: [CodeName; 13] = [
        CodeName::Adm,
        CodeName::Arc2d,
        CodeName::Bdna,
        CodeName::Dyfesm,
        CodeName::Flo52,
        CodeName::Mdg,
        CodeName::Mg3d,
        CodeName::Ocean,
        CodeName::Qcd,
        CodeName::Spec77,
        CodeName::Spice,
        CodeName::Track,
        CodeName::Trfd,
    ];
}

impl std::fmt::Display for CodeName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CodeName::Adm => "ADM",
            CodeName::Arc2d => "ARC2D",
            CodeName::Bdna => "BDNA",
            CodeName::Dyfesm => "DYFESM",
            CodeName::Flo52 => "FLO52",
            CodeName::Mdg => "MDG",
            CodeName::Mg3d => "MG3D",
            CodeName::Ocean => "OCEAN",
            CodeName::Qcd => "QCD",
            CodeName::Spec77 => "SPEC77",
            CodeName::Spice => "SPICE",
            CodeName::Track => "TRACK",
            CodeName::Trfd => "TRFD",
        };
        f.write_str(s)
    }
}

/// Reconstruction targets the model is calibrated to (see EXPERIMENTS.md
/// for provenance; values anchored in the paper where it is legible).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeTargets {
    /// Serial (uniprocessor scalar) time, seconds.
    pub serial_seconds: f64,
    /// Speed improvement, KAP/Cedar-compiled, 4 clusters.
    pub kap_speedup: f64,
    /// Speed improvement, automatable transformations, 4 clusters.
    pub auto_speedup: f64,
    /// Hand-optimized execution time (Table 4), if the paper gives one.
    pub hand_seconds: Option<f64>,
    /// Table 4 improvement over automatable-with-prefetch-without-sync.
    pub hand_improvement: Option<f64>,
}

/// The calibration targets for one code.
pub fn targets(code: CodeName) -> CodeTargets {
    use CodeName::*;
    let (serial, kap, auto, hand, imp) = match code {
        Adm => (900.0, 1.3, 5.0, None, None),
        Arc2d => (1000.0, 4.5, 8.0, Some(68.0), Some(2.1)),
        Bdna => (1100.0, 1.5, 9.0, Some(70.0), Some(1.7)),
        Dyfesm => (450.0, 1.8, 6.0, Some(31.0), None),
        Flo52 => (350.0, 4.5, 7.0, Some(33.0), None),
        Mdg => (4000.0, 1.1, 3.0, None, None),
        Mg3d => (6000.0, 1.0, 8.0, None, None),
        Ocean => (2800.0, 1.3, 5.0, None, None),
        Qcd => (450.0, 1.1, 1.8, Some(21.0), Some(11.4)),
        Spec77 => (2400.0, 1.5, 6.0, None, None),
        Spice => (350.0, 1.1, 1.2, Some(26.0), None),
        Track => (270.0, 1.2, 3.4, None, None),
        Trfd => (230.0, 2.0, 17.0, Some(7.5), Some(2.8)),
    };
    CodeTargets {
        serial_seconds: serial,
        kap_speedup: kap,
        auto_speedup: auto,
        hand_seconds: hand,
        hand_improvement: imp,
    }
}

/// Simulated flop budget per code (scaled instance).
const SIM_FLOPS: u64 = 500_000;

fn body(
    vector_ops: u32,
    vector_len: u32,
    global_frac: f64,
    global_writes: u32,
    scalar_global_reads: u32,
    scalar_cycles: u32,
) -> BodyMix {
    BodyMix {
        vector_ops,
        vector_len,
        flops_per_elem: 2,
        global_frac,
        global_writes,
        scalar_global_reads,
        scalar_cycles,
    }
}

fn auto(needs: &[Transform]) -> ParClass {
    ParClass::Auto(needs.to_vec())
}

/// Formatted/unformatted I/O sized as a fraction of the scaled serial
/// compute time.
fn io_spec(frac_of_serial: f64, mode: IoMode, removable: bool) -> cedar_fortran::ir::IoSpec {
    // Scaled serial compute ≈ SIM_FLOPS × 4 cycles.
    let io_cycles = (SIM_FLOPS as f64 * 4.0 * frac_of_serial / (1.0 - frac_of_serial)) as u64;
    let model = IoModel::cedar();
    let per_byte = match mode {
        IoMode::Formatted => model.formatted_cycles_per_byte,
        IoMode::Unformatted => model.unformatted_cycles_per_byte,
    };
    let ops = 4;
    let bytes = ((io_cycles.saturating_sub(ops * model.per_call_cycles)) as f64 / per_byte) as u64;
    cedar_fortran::ir::IoSpec {
        bytes,
        mode,
        ops,
        removable,
    }
}

/// The baseline (as-distributed) model of `code`.
pub fn spec(code: CodeName) -> CodeSpec {
    use CodeName::*;
    use Transform::*;
    let t = targets(code);
    let components = match code {
        // ADM: pseudospectral air-pollution model. Parallelism hidden
        // behind array privatization and interprocedural analysis.
        Adm => vec![
            Component::compute(
                "transport",
                0.50,
                auto(&[ArrayPrivatization, InterproceduralAnalysis]),
                body(2, 32, 0.4, 1, 0, 20),
            )
            .privatized()
            .not_vectorizable(), // assumed dependences block vectorization too
            Component::compute(
                "vertical",
                0.28,
                auto(&[ArrayPrivatization, SymbolicAnalysis]),
                body(1, 16, 0.5, 1, 0, 24),
            )
            .privatized(),
            Component::compute("setup", 0.06, ParClass::Kap, body(2, 32, 1.0, 1, 0, 10)),
            Component::compute(
                "serial-glue",
                0.16,
                ParClass::Never,
                body(1, 8, 1.0, 0, 1, 30),
            )
            .not_vectorizable(),
        ],
        // ARC2D: implicit 2-D fluid code; highly vectorizable, largely
        // parallel as written — the 1988 KAP already does well.
        Arc2d => vec![
            Component::compute("sweeps-x", 0.40, ParClass::Kap, body(4, 64, 0.9, 2, 0, 12)),
            Component::compute("sweeps-y", 0.29, ParClass::Kap, body(4, 64, 0.9, 2, 0, 12)),
            Component::compute(
                "filters",
                0.13,
                auto(&[ArrayPrivatization, InductionSubstitution]),
                body(3, 32, 0.5, 1, 0, 14),
            )
            .privatized(),
            Component::compute(
                "filters-priv",
                0.10,
                auto(&[ArrayPrivatization, SymbolicAnalysis]),
                body(3, 32, 0.5, 1, 0, 14),
            )
            .privatized()
            .not_vectorizable(),
            Component::compute("glue", 0.09, ParClass::Never, body(1, 8, 1.0, 0, 0, 20))
                .not_vectorizable(),
        ],
        // BDNA: molecular dynamics of DNA; parallel after privatization
        // and reductions, with heavy formatted output.
        Bdna => vec![
            Component::compute(
                "forces",
                0.68,
                auto(&[ArrayPrivatization, ParallelReduction]),
                body(3, 32, 0.5, 1, 0, 16),
            )
            .privatized()
            .not_vectorizable(),
            Component::compute(
                "correlations",
                0.24,
                auto(&[ParallelReduction, SymbolicAnalysis]),
                body(2, 32, 0.6, 1, 0, 16),
            ),
            Component::compute("glue", 0.04, ParClass::Never, body(1, 16, 1.0, 0, 0, 20))
                .not_vectorizable()
                .with_io(io_spec(0.045, IoMode::Formatted, false)),
        ],
        // DYFESM: finite-element structural dynamics with a very small
        // Perfect data set: limited parallelism (few elements), heavy
        // global vector traffic on few processors.
        Dyfesm => vec![
            Component::compute(
                "element-loops",
                0.62,
                auto(&[ArrayPrivatization, RuntimeDepTest]),
                body(6, 16, 0.9, 2, 0, 40),
            )
            .with_trips_cap(8) // the small data set caps parallelism
            .with_calls(4),
            Component::compute(
                "solver",
                0.27,
                auto(&[ParallelReduction, BalancedStripmining]),
                body(2, 16, 0.9, 1, 0, 24),
            )
            .with_calls(4),
            Component::compute("glue", 0.12, ParClass::Never, body(1, 8, 1.0, 0, 0, 24))
                .not_vectorizable()
                .with_calls(4),
        ],
        // FLO52: transonic-flow multigrid code; well vectorized and
        // largely KAP-parallel, but its major routines need sequences of
        // multicluster barriers at the Perfect problem size.
        Flo52 => vec![
            Component::compute(
                "euler-sweeps",
                0.50,
                ParClass::Kap,
                body(3, 48, 0.9, 1, 0, 12),
            )
            .with_calls(8)
            .with_barriers(3),
            Component::compute(
                "multigrid",
                0.30,
                auto(&[ArrayPrivatization, BalancedStripmining]),
                body(2, 24, 0.6, 1, 0, 14),
            )
            .privatized()
            .with_calls(8)
            .with_barriers(2),
            Component::compute(
                "recurrences",
                0.16,
                ParClass::Never,
                body(1, 24, 1.0, 0, 0, 12),
            )
            .with_calls(8),
            Component::compute("glue", 0.05, ParClass::Never, body(1, 8, 1.0, 0, 0, 16))
                .not_vectorizable()
                .with_calls(8),
        ],
        // MDG: liquid-water molecular dynamics; large serial neighbour
        // bookkeeping, parallel force loops needing privatization and
        // reductions.
        Mdg => vec![
            Component::compute(
                "forces",
                0.72,
                auto(&[
                    ArrayPrivatization,
                    ParallelReduction,
                    SaveReturnParallelization,
                ]),
                body(2, 32, 0.6, 1, 0, 20),
            )
            .privatized()
            .not_vectorizable(),
            Component::compute(
                "neighbours",
                0.18,
                ParClass::Never,
                body(1, 8, 1.0, 0, 2, 40),
            )
            .not_vectorizable(),
            Component::compute("glue", 0.10, ParClass::Never, body(1, 8, 1.0, 0, 0, 20)),
        ],
        // MG3D: seismic migration; huge, regular, parallel after
        // privatization; dominated by file I/O in the original form
        // (eliminated in the version Table 3 reports, marked removable).
        Mg3d => vec![
            Component::compute(
                "migration",
                0.77,
                auto(&[ArrayPrivatization, InductionSubstitution]),
                body(4, 64, 0.8, 2, 0, 12),
            )
            .privatized()
            .not_vectorizable()
            .with_io(io_spec(0.30, IoMode::Unformatted, true)),
            Component::compute(
                "fft",
                0.12,
                auto(&[BalancedStripmining]),
                body(2, 32, 0.8, 1, 0, 16),
            ),
            Component::compute("glue", 0.11, ParClass::Never, body(1, 16, 1.0, 0, 0, 16))
                .not_vectorizable(),
        ],
        // OCEAN: 2-D ocean dynamics; fine-grained parallel loops whose
        // self-scheduling needs the low-overhead Cedar synchronization.
        Ocean => vec![
            Component::compute(
                "timestep-loops",
                0.64,
                auto(&[ArrayPrivatization, InductionSubstitution]),
                body(1, 24, 0.8, 1, 0, 16),
            )
            .not_vectorizable()
            .with_calls(6),
            Component::compute(
                "ffts",
                0.20,
                auto(&[BalancedStripmining, SymbolicAnalysis]),
                body(1, 32, 0.8, 1, 0, 12),
            )
            .with_calls(6),
            Component::compute("glue", 0.16, ParClass::Never, body(1, 12, 1.0, 0, 0, 20))
                .not_vectorizable()
                .with_calls(6),
        ],
        // QCD: lattice gauge theory; the sequential random-number
        // generator serializes half the code.
        Qcd => vec![
            Component::compute(
                "update",
                0.42,
                auto(&[ArrayPrivatization, RuntimeDepTest]),
                body(2, 16, 0.6, 1, 0, 24),
            )
            .privatized()
            .not_vectorizable(),
            Component::compute("rng", 0.50, ParClass::Never, body(1, 8, 1.0, 0, 0, 16))
                .not_vectorizable(),
            Component::compute("measure", 0.08, ParClass::Kap, body(1, 16, 0.8, 0, 0, 16)),
        ],
        // SPEC77: spectral weather simulation; mixture of transform
        // parallelism and serial spectral bookkeeping.
        Spec77 => vec![
            Component::compute(
                "transforms",
                0.58,
                auto(&[ArrayPrivatization, InductionSubstitution]),
                body(2, 32, 0.7, 1, 0, 16),
            )
            .privatized()
            .not_vectorizable(),
            Component::compute(
                "physics",
                0.26,
                auto(&[ParallelReduction]),
                body(2, 24, 0.7, 1, 0, 18),
            ),
            Component::compute("glue", 0.16, ParClass::Never, body(1, 12, 1.0, 0, 0, 24))
                .not_vectorizable(),
        ],
        // SPICE: circuit simulation; sparse-matrix pointer chasing and
        // serial control flow — the archetypal poor performer.
        Spice => vec![
            Component::compute(
                "model-eval",
                0.16,
                auto(&[RuntimeDepTest, InterproceduralAnalysis]),
                body(1, 8, 0.9, 0, 2, 40),
            )
            .not_vectorizable(),
            Component::compute("lu-solve", 0.76, ParClass::Never, body(1, 4, 1.0, 0, 3, 40))
                .not_vectorizable(),
            Component::compute("glue", 0.08, ParClass::Never, body(1, 4, 1.0, 0, 1, 40))
                .not_vectorizable(),
        ],
        // TRACK: missile tracking; dominated by scalar accesses and
        // short, irregular loops.
        Track => vec![
            Component::compute(
                "smoothing",
                0.58,
                auto(&[RuntimeDepTest, InterproceduralAnalysis]),
                body(1, 8, 0.8, 0, 3, 30),
            ),
            Component::compute(
                "association",
                0.30,
                ParClass::Never,
                body(1, 8, 1.0, 0, 2, 30),
            )
            .not_vectorizable(),
            Component::compute("glue", 0.12, ParClass::Kap, body(1, 8, 0.9, 0, 1, 20)),
        ],
        // TRFD: two-electron integral transformation; matrix-multiply
        // rich, fully parallel after privatization — the best automatable
        // performer.
        Trfd => vec![
            Component::compute(
                "transform-1",
                0.60,
                auto(&[ArrayPrivatization]),
                body(4, 64, 0.5, 1, 0, 10),
            )
            .privatized(),
            Component::compute(
                "transform-2",
                0.36,
                auto(&[ArrayPrivatization, InductionSubstitution]),
                body(4, 64, 0.5, 1, 0, 10),
            )
            .privatized()
            .not_vectorizable(),
            Component::compute("glue", 0.045, ParClass::Never, body(1, 16, 1.0, 0, 0, 16))
                .not_vectorizable(),
        ],
    };
    CodeSpec {
        name: code_name_str(code),
        real_serial_seconds: t.serial_seconds,
        sim_flops: SIM_FLOPS,
        components,
    }
}

/// The hand-optimized variant of `code`, if the paper reports one
/// (Table 4); `None` otherwise.
pub fn hand_spec(code: CodeName) -> Option<CodeSpec> {
    use CodeName::*;
    use Transform::*;
    let base = spec(code);
    let mut s = base.clone();
    match code {
        // BDNA: replace formatted with unformatted I/O (same data volume,
        // binary transfer).
        Bdna => {
            for c in &mut s.components {
                if let Some(io) = &mut c.io {
                    io.mode = IoMode::Unformatted;
                }
            }
        }
        // ARC2D: remove unnecessary computation (fewer flops) and
        // distribute data aggressively into cluster memory.
        Arc2d => {
            s.sim_flops = (s.sim_flops as f64 * 0.82) as u64;
            for c in &mut s.components {
                c.privatizable = true;
                c.body.global_frac *= 0.5;
                if c.name == "glue" {
                    // the removed redundant computation was largely in
                    // the serial glue
                    c.weight = 0.065;
                }
            }
        }
        // FLO52: one multicluster barrier plus cluster-local sequences in
        // place of each barrier chain; recurrences eliminated.
        Flo52 => {
            for c in &mut s.components {
                c.barriers = c.barriers.min(1);
                if c.name == "recurrences" {
                    c.class = auto(&[SymbolicAnalysis]);
                    c.vectorizable = true;
                }
            }
        }
        // DYFESM: reshaped data structures, assembler kernels using the
        // prefetch unit aggressively, and an algorithm exposing more
        // parallelism through the SDOALL/CDOALL hierarchy.
        Dyfesm => {
            for c in &mut s.components {
                c.trips_cap = None;
                c.body.vector_len = 32;
                c.privatizable = true;
                c.body.global_frac *= 0.6;
                if c.name == "glue" {
                    c.weight = 0.06;
                    c.vectorizable = false;
                }
            }
        }
        // TRFD: high-performance kernels exploiting caches and vector
        // registers; the distributed-memory version removes the
        // multicluster paging pathology.
        Trfd => {
            for c in &mut s.components {
                c.body.vector_len = 64;
                c.body.global_frac *= 0.3;
                c.privatizable = true;
                if c.name == "glue" {
                    c.weight = 0.025;
                }
            }
        }
        // QCD: hand-coded parallel random-number generator.
        Qcd => {
            for c in &mut s.components {
                if c.name == "rng" {
                    c.class = auto(&[ArrayPrivatization]);
                    c.vectorizable = true;
                    c.body.vector_len = 16;
                    c.privatizable = true;
                    c.weight = 0.47;
                }
            }
            // Residual serialization of the generator's seed chain.
            s.components.push(
                Component::compute(
                    "rng-seed-chain",
                    0.022,
                    ParClass::Never,
                    body(1, 8, 1.0, 0, 0, 16),
                )
                .not_vectorizable(),
            );
        }
        // SPICE: new approaches in all major phases.
        Spice => {
            for c in &mut s.components {
                match c.name {
                    "lu-solve" => {
                        c.class = auto(&[RuntimeDepTest, SymbolicAnalysis]);
                        c.vectorizable = true;
                        c.body.vector_len = 16;
                        c.body.scalar_global_reads = 1;
                    }
                    "model-eval" => {
                        c.vectorizable = true;
                        c.body.vector_len = 16;
                    }
                    _ => {}
                }
            }
        }
        _ => return None,
    }
    Some(s)
}

fn code_name_str(code: CodeName) -> &'static str {
    match code {
        CodeName::Adm => "ADM",
        CodeName::Arc2d => "ARC2D",
        CodeName::Bdna => "BDNA",
        CodeName::Dyfesm => "DYFESM",
        CodeName::Flo52 => "FLO52",
        CodeName::Mdg => "MDG",
        CodeName::Mg3d => "MG3D",
        CodeName::Ocean => "OCEAN",
        CodeName::Qcd => "QCD",
        CodeName::Spec77 => "SPEC77",
        CodeName::Spice => "SPICE",
        CodeName::Track => "TRACK",
        CodeName::Trfd => "TRFD",
    }
}

// Builder helpers on Component (kept here: the DSL is only used by specs).
impl Component {
    fn privatized(mut self) -> Component {
        self.privatizable = true;
        self
    }
    fn not_vectorizable(mut self) -> Component {
        self.vectorizable = false;
        self
    }
    fn with_calls(mut self, calls: u32) -> Component {
        self.calls = calls;
        self
    }
    fn with_barriers(mut self, barriers: u32) -> Component {
        self.barriers = barriers;
        self
    }
    fn with_io(mut self, io: cedar_fortran::ir::IoSpec) -> Component {
        self.io = Some(io);
        self
    }
    fn with_trips_cap(mut self, cap: u64) -> Component {
        self.trips_cap = Some(cap);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_have_sane_weights() {
        for code in CodeName::ALL {
            let s = spec(code);
            let w = s.total_weight();
            assert!(
                (0.95..=1.05).contains(&w),
                "{code}: component weights sum to {w}"
            );
            assert!(!s.components.is_empty());
        }
    }

    #[test]
    fn hand_variants_exist_for_table4_codes() {
        let with_hand: Vec<CodeName> = CodeName::ALL
            .into_iter()
            .filter(|c| hand_spec(*c).is_some())
            .collect();
        assert_eq!(
            with_hand,
            vec![
                CodeName::Arc2d,
                CodeName::Bdna,
                CodeName::Dyfesm,
                CodeName::Flo52,
                CodeName::Qcd,
                CodeName::Spice,
                CodeName::Trfd,
            ]
        );
    }

    #[test]
    fn targets_follow_table4_where_given() {
        assert_eq!(targets(CodeName::Trfd).hand_seconds, Some(7.5));
        assert_eq!(targets(CodeName::Qcd).hand_improvement, Some(11.4));
        assert_eq!(targets(CodeName::Arc2d).hand_seconds, Some(68.0));
        assert!(targets(CodeName::Mdg).hand_seconds.is_none());
    }

    #[test]
    fn specs_convert_to_ir() {
        for code in CodeName::ALL {
            let src = spec(code).to_source();
            assert!(!src.phases.is_empty(), "{code}");
            assert!(src.flops() > 0, "{code}");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(CodeName::Flo52.to_string(), "FLO52");
        assert_eq!(CodeName::ALL.len(), 13);
    }
}

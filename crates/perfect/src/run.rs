//! Running Perfect codes on the simulated Cedar.
//!
//! A [`CodeStudy`] measures one code at every configuration of Table 3
//! plus the Table 4 hand-optimized variant: serial baseline, KAP/Cedar,
//! automatable, automatable without Cedar synchronization, automatable
//! without prefetch, and hand. Results are reported at paper scale: the
//! serial simulation fixes the time scale
//! (`real_serial_seconds / simulated_serial_seconds`), which then applies
//! to every variant of the code.

use cedar_fortran::compile::Backend;
use cedar_fortran::restructure::{Level, Restructurer};
use cedar_fortran::SourceProgram;
use cedar_xylem::costs::XylemCosts;

use crate::codes::{hand_spec, spec, targets, CodeName};

/// The measured configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Uniprocessor scalar baseline.
    Serial,
    /// Compiled by KAP/Cedar.
    Kap,
    /// Automatable transformations (prefetch + Cedar synchronization).
    Automatable,
    /// Automatable without Cedar synchronization for loop scheduling.
    AutoNoSync,
    /// Automatable without prefetch (and without Cedar synchronization,
    /// following the paper's column nesting).
    AutoNoPrefetch,
    /// Hand-optimized (prefetch, no Cedar synchronization — the Table 4
    /// footnote configuration). Only exists for the Table 4 codes.
    Hand,
}

impl Variant {
    /// All variants in report order.
    pub const ALL: [Variant; 6] = [
        Variant::Serial,
        Variant::Kap,
        Variant::Automatable,
        Variant::AutoNoSync,
        Variant::AutoNoPrefetch,
        Variant::Hand,
    ];
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Variant::Serial => "serial",
            Variant::Kap => "kap/cedar",
            Variant::Automatable => "automatable",
            Variant::AutoNoSync => "auto w/o synch",
            Variant::AutoNoPrefetch => "auto w/o prefetch",
            Variant::Hand => "hand",
        };
        f.write_str(s)
    }
}

/// One measured configuration of one code.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodeRun {
    pub code: CodeName,
    pub variant: Variant,
    /// Execution time at paper scale, seconds.
    pub seconds: f64,
    /// Sustained MFLOPS (scale-invariant).
    pub mflops: f64,
    /// Speed improvement over the serial baseline.
    pub speedup: f64,
    /// Simulated cycles (diagnostic).
    pub sim_cycles: u64,
}

/// Study of one code: caches the serial baseline that fixes the scale.
#[derive(Debug)]
pub struct CodeStudy {
    code: CodeName,
    clusters: usize,
    limit: u64,
    scale: f64,
    serial_sim_seconds: f64,
    serial_run: CodeRun,
}

impl CodeStudy {
    /// Measure the serial baseline of `code` on `clusters` clusters
    /// (parallel variants use all of them).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn new(code: CodeName, clusters: usize) -> cedar_machine::Result<CodeStudy> {
        let limit = 4_000_000_000;
        let t = targets(code);
        let src = source_for(code, Variant::Serial);
        let compiled = Restructurer::default().restructure(&src, Level::Serial);
        let rep = Backend::new(XylemCosts::cedar()).execute(&compiled, 1, limit)?;
        let scale = t.serial_seconds / rep.seconds;
        Ok(CodeStudy {
            code,
            clusters,
            limit,
            scale,
            serial_sim_seconds: rep.seconds,
            serial_run: CodeRun {
                code,
                variant: Variant::Serial,
                seconds: t.serial_seconds,
                mflops: rep.mflops,
                speedup: 1.0,
                sim_cycles: rep.cycles,
            },
        })
    }

    /// The code under study.
    pub fn code(&self) -> CodeName {
        self.code
    }

    /// Simulated→paper time scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Run one variant. Returns `None` for [`Variant::Hand`] on codes
    /// without a hand-optimized version.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run(&self, variant: Variant) -> cedar_machine::Result<Option<CodeRun>> {
        if variant == Variant::Serial {
            return Ok(Some(self.serial_run));
        }
        if variant == Variant::Hand && hand_spec(self.code).is_none() {
            return Ok(None);
        }
        let src = source_for(self.code, variant);
        let (level, costs) = match variant {
            Variant::Serial => unreachable!(),
            Variant::Kap => (Level::KapCedar, XylemCosts::cedar()),
            Variant::Automatable => (Level::Automatable, XylemCosts::cedar()),
            Variant::AutoNoSync => (Level::Automatable, XylemCosts::cedar_without_sync()),
            Variant::AutoNoPrefetch => (Level::Automatable, XylemCosts::cedar_without_prefetch()),
            // Table 4 footnote: "We use prefetch but not Cedar
            // synchronization."
            Variant::Hand => (Level::Automatable, XylemCosts::cedar_without_sync()),
        };
        let compiled = Restructurer::default().restructure(&src, level);
        let rep = Backend::new(costs).execute(&compiled, self.clusters, self.limit)?;
        let seconds = rep.seconds * self.scale;
        Ok(Some(CodeRun {
            code: self.code,
            variant,
            seconds,
            mflops: rep.mflops,
            speedup: self.serial_sim_seconds * self.scale / seconds,
            sim_cycles: rep.cycles,
        }))
    }
}

/// The IR a variant runs: hand codes swap in the hand specification, and
/// the automatable level drops removable I/O (the MG3D Table 3 footnote).
fn source_for(code: CodeName, variant: Variant) -> SourceProgram {
    let s = match variant {
        Variant::Hand => hand_spec(code).unwrap_or_else(|| spec(code)),
        _ => spec(code),
    };
    let mut src = s.to_source();
    if matches!(
        variant,
        Variant::Automatable | Variant::AutoNoSync | Variant::AutoNoPrefetch | Variant::Hand
    ) {
        for ph in &mut src.phases {
            if ph.io.as_ref().is_some_and(|io| io.removable) {
                ph.io = None;
            }
        }
    }
    src
}

/// Convenience: the full Table 3 row-set of one code (serial, KAP,
/// automatable, both ablations, and hand when available).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn study_code(code: CodeName, clusters: usize) -> cedar_machine::Result<Vec<CodeRun>> {
    let study = CodeStudy::new(code, clusters)?;
    let mut out = Vec::new();
    for v in Variant::ALL {
        if let Some(run) = study.run(v)? {
            out.push(run);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_run_matches_calibration_target() {
        let study = CodeStudy::new(CodeName::Trfd, 4).unwrap();
        let serial = study.run(Variant::Serial).unwrap().unwrap();
        let t = targets(CodeName::Trfd);
        assert!((serial.seconds - t.serial_seconds).abs() < 1e-6);
        assert!((serial.speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn automatable_beats_kap_beats_serial_on_trfd() {
        let study = CodeStudy::new(CodeName::Trfd, 4).unwrap();
        let kap = study.run(Variant::Kap).unwrap().unwrap();
        let auto = study.run(Variant::Automatable).unwrap().unwrap();
        assert!(kap.speedup > 1.0, "kap {}", kap.speedup);
        assert!(auto.speedup > kap.speedup, "auto {}", auto.speedup);
    }

    #[test]
    fn hand_only_for_table4_codes() {
        let study = CodeStudy::new(CodeName::Mdg, 4).unwrap();
        assert!(study.run(Variant::Hand).unwrap().is_none());
    }

    #[test]
    fn spice_barely_improves() {
        let study = CodeStudy::new(CodeName::Spice, 4).unwrap();
        let auto = study.run(Variant::Automatable).unwrap().unwrap();
        assert!(
            auto.speedup < 2.5,
            "SPICE should be a poor performer: {}",
            auto.speedup
        );
    }
}

//! From code specifications to loop-nest IR.
//!
//! A [`CodeSpec`] describes one Perfect Benchmarks program as a weighted
//! set of [`Component`]s — each a family of loops with a characteristic
//! shape (granularity, memory mix, vectorizability) and a *parallelism
//! class* saying which restructuring level can parallelize it. The model
//! is calibrated: component weights and shapes are chosen so the
//! simulated machine reproduces the paper's reported times and speedups;
//! the calibration targets live next to each code in
//! [`codes`](crate::codes) and the reconstruction is documented in
//! EXPERIMENTS.md.
//!
//! Because the real codes run minutes to hours, the simulator executes a
//! *scaled* instance: each code performs [`CodeSpec::sim_flops`] simulated
//! floating-point operations with per-iteration granularity preserved,
//! and reported times are multiplied by the flop ratio. Rates (MFLOPS)
//! and speedups are scale-invariant.

use cedar_fortran::ir::{BodyMix, DataHome, IoSpec, LoopNest, Phase, SourceProgram, Transform};

/// Which restructuring capability a component's loops need.
#[derive(Debug, Clone, PartialEq)]
pub enum ParClass {
    /// Parallel as written: the 1988 KAP finds it.
    Kap,
    /// Parallel only after the listed automatable transformations.
    Auto(Vec<Transform>),
    /// Not parallelizable by any compiler (serial semantics, I/O,
    /// pointer-chasing).
    Never,
}

/// One weighted workload component.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    /// Name for reports.
    pub name: &'static str,
    /// Fraction of the code's floating-point work in this component.
    pub weight: f64,
    /// Parallelism class.
    pub class: ParClass,
    /// Per-iteration operation mix (granularity driver).
    pub body: BodyMix,
    /// Whether the inner loops vectorize.
    pub vectorizable: bool,
    /// Whether the component's local data is privatizable.
    pub privatizable: bool,
    /// Outer repetitions in the simulated instance (timesteps).
    pub calls: u32,
    /// Extra multicluster barriers per call (FLO52-style sequences).
    pub barriers: u32,
    /// I/O attached to this component (per call).
    pub io: Option<IoSpec>,
    /// Pure serial cycles per call *in addition* to loop work (set
    /// automatically for `Never` components without flops).
    pub serial_cycles: u64,
    /// Cap on the parallel trip count — limited parallelism (the DYFESM
    /// small-data-set situation). When capped, the per-iteration work is
    /// scaled up to preserve the component's flop share.
    pub trips_cap: Option<u64>,
}

impl Component {
    /// A compute component with the given weight and class.
    pub fn compute(name: &'static str, weight: f64, class: ParClass, body: BodyMix) -> Component {
        Component {
            name,
            weight,
            class,
            body,
            vectorizable: true,
            privatizable: false,
            calls: 1,
            barriers: 0,
            io: None,
            serial_cycles: 0,
            trips_cap: None,
        }
    }

    fn flops_per_iter(&self) -> u64 {
        self.body.flops_per_iter().max(1)
    }
}

/// A complete Perfect-code specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeSpec {
    /// Program name.
    pub name: &'static str,
    /// The paper-era serial (uniprocessor scalar) execution time this
    /// model is calibrated to, in seconds.
    pub real_serial_seconds: f64,
    /// Simulated floating-point operations (scaled-down instance).
    pub sim_flops: u64,
    /// Workload components (weights should sum to ~1).
    pub components: Vec<Component>,
}

impl CodeSpec {
    /// Build the loop-nest IR of the scaled instance.
    ///
    /// Each component becomes one phase whose loop trip count is derived
    /// from its flop share, preserving the per-iteration granularity.
    pub fn to_source(&self) -> SourceProgram {
        let mut prog = SourceProgram::new(self.name);
        for c in &self.components {
            let mut ph = Phase::new(c.name, c.calls);
            let target = (self.sim_flops as f64 * c.weight) as u64;
            let per_call = target / u64::from(c.calls.max(1));
            let mut trips = (per_call / c.flops_per_iter()).max(1);
            let mut body = c.body.clone();
            if let Some(cap) = c.trips_cap {
                if trips > cap {
                    // Limited parallelism: fewer, heavier iterations with
                    // the same total flops.
                    trips = cap;
                    let per_iter = (per_call / cap).max(1);
                    let per_vec = u64::from(body.vector_len) * u64::from(body.flops_per_elem);
                    body.vector_ops = (per_iter / per_vec).max(1) as u32;
                }
            }
            let (parallel, needs) = match &c.class {
                ParClass::Kap => (true, vec![]),
                ParClass::Auto(t) => (true, t.clone()),
                ParClass::Never => (false, vec![]),
            };
            ph.loops.push(LoopNest {
                trips,
                body,
                needs,
                parallel,
                vectorizable: c.vectorizable,
                home: if c.privatizable {
                    DataHome::Privatizable
                } else {
                    DataHome::Global
                },
            });
            ph.serial_cycles = c.serial_cycles;
            ph.io = c.io.clone();
            ph.extra_barriers = c.barriers;
            prog.phases.push(ph);
        }
        prog
    }

    /// Ratio from simulated time to reported (paper-scale) time, derived
    /// from the calibration target: the scaled instance must map onto
    /// `real_serial_seconds` when run serially.
    ///
    /// The scale is `real_serial_seconds / simulated_serial_seconds`; the
    /// runner measures the denominator once per code.
    pub fn total_weight(&self) -> f64 {
        self.components.iter().map(|c| c.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> BodyMix {
        BodyMix {
            vector_ops: 2,
            vector_len: 32,
            flops_per_elem: 2,
            global_frac: 1.0,
            global_writes: 1,
            scalar_global_reads: 0,
            scalar_cycles: 10,
        }
    }

    #[test]
    fn to_source_preserves_flop_budget_roughly() {
        let spec = CodeSpec {
            name: "t",
            real_serial_seconds: 100.0,
            sim_flops: 600_000,
            components: vec![
                Component::compute("a", 0.7, ParClass::Kap, mix()),
                Component::compute("b", 0.3, ParClass::Never, mix()),
            ],
        };
        let src = spec.to_source();
        let f = src.flops() as f64;
        assert!(
            (f - 600_000.0).abs() / 600_000.0 < 0.02,
            "flops {f} off target"
        );
        assert_eq!(src.phases.len(), 2);
    }

    #[test]
    fn trips_derived_from_weights() {
        let spec = CodeSpec {
            name: "t",
            real_serial_seconds: 1.0,
            sim_flops: 128_000,
            components: vec![Component::compute("a", 1.0, ParClass::Kap, mix())],
        };
        let src = spec.to_source();
        // 128 flops/iter -> 1000 trips.
        assert_eq!(src.phases[0].loops[0].trips, 1000);
    }

    #[test]
    fn weights_sum() {
        let spec = CodeSpec {
            name: "t",
            real_serial_seconds: 1.0,
            sim_flops: 1,
            components: vec![
                Component::compute("a", 0.25, ParClass::Kap, mix()),
                Component::compute("b", 0.75, ParClass::Never, mix()),
            ],
        };
        assert!((spec.total_weight() - 1.0).abs() < 1e-12);
    }
}

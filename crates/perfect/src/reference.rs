//! Published reference data for the comparison machines.
//!
//! The paper compares Cedar against the Cray YMP/8 (baseline-compiler
//! MFLOPS ratios in Table 3, autotasked instability in Table 5,
//! restructuring-efficiency bands in Table 6, manually-optimized
//! efficiencies in Fig. 3), the Cray 1 (Table 5, "with modern compiler"),
//! and the TMC CM-5 without floating-point accelerators (banded
//! matrix–vector products from \[FWPS92\], used in the PPT4 discussion).
//!
//! These machines are *datasets*, not simulations: the paper itself uses
//! them only as published numbers. Where the surviving scan is illegible
//! the values are reconstructions calibrated to the paper's summary
//! statistics (YMP harmonic-mean MFLOPS 23.7 ≈ 7.4× Cedar; the Table 5
//! instabilities; the Table 6 band counts; Fig. 3's "half high / half
//! intermediate, one unacceptable"). EXPERIMENTS.md documents each.

use crate::codes::CodeName;

/// Per-code Cray YMP/8 reference values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YmpRef {
    /// Baseline-compiler (single-CPU vectorized) MFLOPS — the Table 3
    /// ratio column numerator.
    pub mflops: f64,
    /// Speedup of the automatically restructured / autotasked version on
    /// 8 CPUs over one CPU (drives Table 6 and Table 5).
    pub auto_speedup: f64,
    /// Speedup of the manually optimized version on 8 CPUs, where
    /// published (drives Fig. 3).
    pub manual_speedup: Option<f64>,
}

/// Cray YMP/8 reference data.
pub fn ymp(code: CodeName) -> YmpRef {
    use CodeName::*;
    let (mflops, auto_speedup, manual) = match code {
        Adm => (16.0, 0.9, None),
        Arc2d => (85.0, 2.3, Some(5.6)),
        Bdna => (25.0, 1.1, Some(2.0)),
        Dyfesm => (30.0, 1.5, Some(2.4)),
        Flo52 => (90.0, 2.5, Some(4.8)),
        Mdg => (35.0, 1.0, None),
        Mg3d => (50.0, 1.2, None),
        Ocean => (25.0, 1.4, None),
        Qcd => (8.0, 1.0, Some(1.6)),
        Spec77 => (40.0, 1.6, None),
        Spice => (7.0, 0.45, Some(1.0)),
        Track => (9.0, 1.05, None),
        Trfd => (60.0, 2.8, Some(4.4)),
    };
    YmpRef {
        mflops,
        auto_speedup,
        manual_speedup: manual,
    }
}

/// The YMP/8 MFLOPS of the 8-CPU autotasked runs (Table 5's ensemble).
pub fn ymp_parallel_mflops(code: CodeName) -> f64 {
    let r = ymp(code);
    r.mflops * r.auto_speedup
}

/// Cray 1 MFLOPS "with modern compiler" (Table 5 ensemble), derived from
/// the analytic vector-machine model in [`cray`](crate::cray).
pub fn cray1_mflops(code: CodeName) -> f64 {
    let m = crate::cray::VectorMachine::cray1();
    m.code_mflops(&crate::cray::character(code))
}

/// One CM-5 banded matrix–vector measurement \[FWPS92\]: 32 processors,
/// no floating-point accelerators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cm5Point {
    /// Matrix bandwidth.
    pub bandwidth: u32,
    /// Problem size N.
    pub n: u64,
    /// Delivered MFLOPS on 32 processors.
    pub mflops: f64,
}

/// The CM-5 banded matvec series quoted in §4.3: BW=3 delivers 28–32
/// MFLOPS and BW=11 delivers 58–67 MFLOPS as N ranges over 16K…256K on
/// 32 processors; performance is *intermediate* (not high) relative to
/// 32, 256 and 512 processors throughout.
pub fn cm5_banded_series() -> Vec<Cm5Point> {
    let sizes: [u64; 5] = [16_384, 32_768, 65_536, 131_072, 262_144];
    let mut out = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let t = i as f64 / (sizes.len() - 1) as f64;
        out.push(Cm5Point {
            bandwidth: 3,
            n,
            mflops: 28.0 + t * (32.0 - 28.0),
        });
        out.push(Cm5Point {
            bandwidth: 11,
            n,
            mflops: 58.0 + t * (67.0 - 58.0),
        });
    }
    out
}

/// Paper-quoted summary statistics used to validate the reconstruction.
pub mod paper {
    /// YMP/8 harmonic-mean MFLOPS (baseline compiler) over the Perfect
    /// codes.
    pub const YMP_HARMONIC_MEAN_MFLOPS: f64 = 23.7;
    /// Cedar automatable harmonic mean is 7.4× smaller.
    pub const YMP_OVER_CEDAR: f64 = 7.4;
    /// Table 5 instabilities.
    pub const CEDAR_IN_13_0: f64 = 63.4;
    pub const CEDAR_IN_13_2: f64 = 5.8;
    pub const CRAY1_IN_13_2: f64 = 10.9;
    pub const CRAY1_IN_13_6: f64 = 4.6;
    pub const YMP_IN_13_0: f64 = 75.3;
    pub const YMP_IN_13_2: f64 = 29.0;
    pub const YMP_IN_13_6: f64 = 5.3;
    /// Table 6 band counts (high, intermediate, unacceptable).
    pub const CEDAR_BANDS: (usize, usize, usize) = (1, 9, 3);
    pub const YMP_BANDS: (usize, usize, usize) = (0, 6, 7);
    /// Table 1 (MFLOPS for the rank-64 update).
    pub const TABLE1_NOPREF: [f64; 4] = [14.5, 29.0, 43.0, 55.0];
    pub const TABLE1_PREF: [f64; 4] = [50.0, 84.0, 96.0, 104.0];
    pub const TABLE1_CACHE: [f64; 4] = [52.0, 104.0, 152.0, 208.0];
    /// Absolute and effective (vector-startup-limited) peak MFLOPS.
    pub const PEAK_MFLOPS: f64 = 376.0;
    pub const EFFECTIVE_PEAK_MFLOPS: f64 = 274.0;
    /// §4.3 absolute rates: Cedar CG 34–48 MFLOPS for N = 10K…172K.
    pub const CEDAR_CG_MFLOPS_RANGE: (f64, f64) = (34.0, 48.0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harmonic_mean(xs: impl Iterator<Item = f64>) -> f64 {
        let mut n = 0.0;
        let mut s = 0.0;
        for x in xs {
            n += 1.0;
            s += 1.0 / x;
        }
        n / s
    }

    #[test]
    fn ymp_harmonic_mean_near_paper_value() {
        let hm = harmonic_mean(CodeName::ALL.iter().map(|&c| ymp(c).mflops));
        assert!(
            (hm - paper::YMP_HARMONIC_MEAN_MFLOPS).abs() / paper::YMP_HARMONIC_MEAN_MFLOPS < 0.25,
            "YMP harmonic mean {hm:.1} vs paper 23.7"
        );
    }

    #[test]
    fn ymp_band_counts_match_table6() {
        // Bands on 8 processors: high ≥ P/2 = 4; acceptable ≥ P/(2 log2 P)
        // = 8/6 ≈ 1.333.
        let mut high = 0;
        let mut mid = 0;
        let mut bad = 0;
        for c in CodeName::ALL {
            let s = ymp(c).auto_speedup;
            if s >= 4.0 {
                high += 1;
            } else if s >= 8.0 / (2.0 * 3.0) {
                mid += 1;
            } else {
                bad += 1;
            }
        }
        assert_eq!((high, mid, bad), paper::YMP_BANDS);
    }

    #[test]
    fn ymp_manual_is_half_high_half_intermediate_one_unacceptable() {
        let mut high = 0;
        let mut mid = 0;
        let mut bad = 0;
        for c in CodeName::ALL {
            if let Some(s) = ymp(c).manual_speedup {
                if s >= 4.0 {
                    high += 1;
                } else if s >= 8.0 / 6.0 {
                    mid += 1;
                } else {
                    bad += 1;
                }
            }
        }
        assert_eq!(bad, 1, "one unacceptable YMP point in Fig 3");
        assert!(high >= 3 && mid >= 3, "half high, half intermediate");
    }

    #[test]
    fn cm5_series_covers_paper_ranges() {
        let pts = cm5_banded_series();
        let bw3: Vec<f64> = pts
            .iter()
            .filter(|p| p.bandwidth == 3)
            .map(|p| p.mflops)
            .collect();
        let bw11: Vec<f64> = pts
            .iter()
            .filter(|p| p.bandwidth == 11)
            .map(|p| p.mflops)
            .collect();
        assert!(bw3.iter().all(|&m| (28.0..=32.0).contains(&m)));
        assert!(bw11.iter().all(|&m| (58.0..=67.0).contains(&m)));
        assert_eq!(pts.len(), 10);
    }
}

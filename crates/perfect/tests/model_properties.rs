//! Property-based tests of the Perfect workload-model construction.

use proptest::prelude::*;

use cedar_fortran::ir::BodyMix;
use cedar_perfect::codes::CodeName;
use cedar_perfect::model::{CodeSpec, Component, ParClass};

fn arb_body() -> impl Strategy<Value = BodyMix> {
    (
        1u32..5,
        prop::sample::select(vec![8u32, 16, 32, 64]),
        0u32..60,
    )
        .prop_map(|(ops, len, sc)| BodyMix {
            vector_ops: ops,
            vector_len: len,
            flops_per_elem: 2,
            global_frac: 0.8,
            global_writes: 1,
            scalar_global_reads: 0,
            scalar_cycles: sc,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The generated IR's flop total tracks the spec's budget within the
    /// rounding of trips × per-iteration work.
    #[test]
    fn flop_budget_respected(
        weights in prop::collection::vec(0.05f64..1.0, 1..5),
        bodies in prop::collection::vec(arb_body(), 5),
        sim_flops in 100_000u64..1_000_000,
    ) {
        let total: f64 = weights.iter().sum();
        let comps: Vec<Component> = weights
            .iter()
            .zip(&bodies)
            .enumerate()
            .map(|(i, (w, b))| {
                Component::compute(
                    Box::leak(format!("c{i}").into_boxed_str()),
                    w / total,
                    ParClass::Kap,
                    b.clone(),
                )
            })
            .collect();
        let spec = CodeSpec {
            name: "prop",
            real_serial_seconds: 100.0,
            sim_flops,
            components: comps,
        };
        let src = spec.to_source();
        let f = src.flops() as f64;
        // Rounding loses at most one iteration's flops per component.
        let slack: f64 = bodies
            .iter()
            .take(weights.len())
            .map(|b| b.flops_per_iter() as f64)
            .sum::<f64>()
            + weights.len() as f64;
        prop_assert!(
            (f - sim_flops as f64).abs() <= slack + 0.02 * sim_flops as f64,
            "flops {f} vs budget {sim_flops} (slack {slack})"
        );
    }

    /// The trips cap preserves the flop share by fattening iterations.
    #[test]
    fn trips_cap_preserves_flops(cap in 1u64..32, body in arb_body()) {
        let mut c = Component::compute("capped", 1.0, ParClass::Kap, body);
        c.trips_cap = Some(cap);
        let spec = CodeSpec {
            name: "prop",
            real_serial_seconds: 1.0,
            sim_flops: 400_000,
            components: vec![c],
        };
        let src = spec.to_source();
        let l = &src.phases[0].loops[0];
        prop_assert!(l.trips <= cap);
        let f = src.flops() as f64;
        prop_assert!(
            (f - 400_000.0).abs() < 0.05 * 400_000.0 + 2.0 * l.body.flops_per_iter() as f64,
            "flops {f}"
        );
    }
}

#[test]
fn every_code_has_positive_mflops_references() {
    use cedar_perfect::reference::{cray1_mflops, ymp, ymp_parallel_mflops};
    for c in CodeName::ALL {
        assert!(ymp(c).mflops > 0.0);
        assert!(ymp_parallel_mflops(c) > 0.0);
        assert!(cray1_mflops(c) > 0.0);
    }
}

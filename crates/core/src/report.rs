//! Plain-text table rendering for experiment reports.

use cedar_machine::stats::MachineStats;

/// A simple fixed-width table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title.
    pub fn new(title: &str) -> Table {
        Table {
            title: title.to_string(),
            ..Table::default()
        }
    }

    /// Set the column headers.
    pub fn header(&mut self, cols: &[&str]) -> &mut Self {
        self.header = cols.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Append a row.
    pub fn row(&mut self, cols: Vec<String>) -> &mut Self {
        self.rows.push(cols);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cols: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cols.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = widths[i].saturating_sub(c.chars().count());
                // Right-align numbers, left-align first column.
                if i == 0 {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                } else {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                }
            }
            line.push('\n');
            line
        };
        if !self.header.is_empty() {
            out.push_str(&fmt_row(&self.header, &widths));
            out.push_str(&format!(
                "{}\n",
                "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
            ));
        }
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = format!("# {}\n", self.title);
        if !self.header.is_empty() {
            out.push_str(&self.header.join(","));
            out.push('\n');
        }
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Renders a [`MachineStats`] registry (a snapshot or a per-run delta)
/// as grouped [`Table`]s: one row per counter, grouped by the first
/// dotted segment of the counter name, plus a histogram summary table.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatsTable;

impl StatsTable {
    /// Render every counter group and histogram in `stats`.
    pub fn render(stats: &MachineStats) -> String {
        Self::render_filtered(stats, |_| true)
    }

    /// Render only the counters whose top-level group (`cache`, `net`,
    /// `gmem`, …) satisfies `keep`.
    pub fn render_filtered(stats: &MachineStats, keep: impl Fn(&str) -> bool) -> String {
        let mut out = String::new();
        let mut current: Option<(String, Table)> = None;
        for (name, value) in stats.counters() {
            let group = Self::group_of(name);
            if !keep(group) {
                continue;
            }
            if current.as_ref().map(|(g, _)| g.as_str()) != Some(group) {
                if let Some((_, t)) = current.take() {
                    out.push_str(&t.render());
                }
                let mut t = Table::new(group);
                t.header(&["counter", "value"]);
                current = Some((group.to_string(), t));
            }
            if let Some((_, t)) = current.as_mut() {
                t.row(vec![name.to_string(), value.to_string()]);
            }
        }
        if let Some((_, t)) = current.take() {
            out.push_str(&t.render());
        }
        let histograms: Vec<_> = stats
            .histograms()
            .filter(|(name, _)| keep(Self::group_of(name)))
            .collect();
        if !histograms.is_empty() {
            let mut t = Table::new("histograms");
            t.header(&["histogram", "total", "mean", "p50", "p95", "p99"]);
            for (name, h) in histograms {
                let pct = |p| {
                    h.percentile(p)
                        .map_or_else(|| "-".to_string(), |v| v.to_string())
                };
                t.row(vec![
                    name.to_string(),
                    h.total().to_string(),
                    f1(h.mean()),
                    pct(0.50),
                    pct(0.95),
                    pct(0.99),
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }

    /// The top-level group of a counter name: the leading segment up to
    /// the first `.` or `[`.
    fn group_of(name: &str) -> &str {
        name.split(['.', '[']).next().unwrap_or(name)
    }
}

/// Format a float to one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float to two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format an optional float to one decimal, blank when absent.
pub fn opt_f1(v: Option<f64>) -> String {
    v.map(f1).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("demo");
        t.header(&["code", "x"]);
        t.row(vec!["LONGNAME".into(), "1.5".into()]);
        t.row(vec!["ab".into(), "10.25".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("LONGNAME"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new("demo");
        t.header(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("# demo"));
    }

    #[test]
    fn stats_table_groups_counters() {
        let mut s = MachineStats::new();
        s.set("cache.hits", 12);
        s.set("cache[0].hits", 12);
        s.set("net.fwd.packets_injected", 3);
        let out = StatsTable::render(&s);
        assert!(out.contains("== cache =="));
        assert!(out.contains("== net =="));
        assert!(out.contains("cache[0].hits"));
        let filtered = StatsTable::render_filtered(&s, |g| g == "net");
        assert!(!filtered.contains("cache"));
        assert!(filtered.contains("packets_injected"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(opt_f1(None), "");
        assert_eq!(opt_f1(Some(2.0)), "2.0");
    }
}

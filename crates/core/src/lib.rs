//! # cedar
//!
//! The public facade of the Cedar reproduction: everything needed to
//! rebuild the evaluation of *"The Cedar System and an Initial
//! Performance Study"* (ISCA 1993) on a simulated machine.
//!
//! The workspace layers:
//!
//! * [`machine`](crate::machine) (re-export of `cedar-machine`) — the cycle-level Cedar
//!   simulator: clusters, vector CEs, shared caches, omega networks,
//!   global memory with synchronization processors, prefetch units;
//! * [`xylem`] — the OS layer: gangs, DOALL loop runtime, placement, I/O;
//! * [`fortran`] — the Cedar Fortran model: loop IR, the KAP and
//!   "automatable" restructuring levels, lowering to machine programs;
//! * [`kernels`] — the measured kernels (rank-64 update, VL, TM, CG) in
//!   both numeric and staged form;
//! * [`perfect`] — the 13 Perfect Benchmarks workload models plus the
//!   Cray/CM-5 reference datasets;
//! * [`methodology`] — speedup/efficiency/stability metrics, performance
//!   bands, and the Practical Parallelism Tests;
//! * [`experiments`] — runners that regenerate every table and figure.
//!
//! ## Quickstart
//!
//! ```no_run
//! // Reproduce Table 1 (rank-64 update, three memory versions):
//! let t1 = cedar::experiments::table1::run(256)?;
//! println!("{}", t1.render());
//!
//! // Every run also carries a per-run delta of the machine-wide stats
//! // registry (`cedar_machine::stats`): cache hits, network conflicts,
//! // memory-bank contention, per-CE busy/stall/idle cycles, and more.
//! // Render the cache counters behind the 4-cluster GM/cache result:
//! let stats = &t1.rows[2].stats[3];
//! println!(
//!     "{}",
//!     cedar::report::StatsTable::render_filtered(stats, |g| g == "cache")
//! );
//! # Ok::<(), cedar_machine::MachineError>(())
//! ```
//!
//! Table 2's latency/interarrival numbers likewise come from the shared
//! stats layer (the `prefetch.*` counters and `prefetch.latency`
//! histogram) rather than a one-off probe; see
//! [`experiments::table2`].

pub mod experiments;
pub mod report;

pub use cedar_fortran as fortran;
pub use cedar_kernels as kernels;
pub use cedar_machine as machine;
pub use cedar_methodology as methodology;
pub use cedar_perfect as perfect;
pub use cedar_xylem as xylem;

/// A fully configured 32-CE Cedar machine (convenience constructor).
///
/// # Errors
///
/// Never fails in practice; the canonical configuration is valid.
pub fn cedar_machine() -> cedar_machine::Result<cedar_machine::Machine> {
    cedar_machine::Machine::cedar()
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_builds_a_machine() {
        let m = super::cedar_machine().unwrap();
        assert_eq!(m.config().total_ces(), 32);
    }
}

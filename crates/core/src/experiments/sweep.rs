//! Experiment-level parallel sweep runner.
//!
//! The experiment drivers (Table 2, PPT4, the Perfect suite) are sweeps
//! of independent simulations: every point builds its own [`Machine`] and
//! runs it to completion, so points can execute on any number of host
//! threads without sharing state. The simulator itself is deterministic,
//! which leaves exactly one requirement for reproducible reports:
//! results must be assembled in *input order*, never completion order.
//! [`parallel_map`] guarantees that, so a sweep's rendered output is
//! byte-identical whatever `CEDAR_SWEEP_THREADS` says.
//!
//! This layer is orthogonal to the intra-machine parallel engine
//! (`CEDAR_NUM_THREADS`): that knob shards one machine's clusters across
//! threads, this one runs whole independent machines side by side.
//!
//! [`Machine`]: cedar_machine::machine::Machine

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Host threads used for experiment sweeps: `CEDAR_SWEEP_THREADS` when
/// set to a positive integer, otherwise the host's available parallelism.
/// A set-but-invalid value logs a warning (via the machine crate's shared
/// env parser) and falls back to the host parallelism.
pub fn sweep_threads() -> usize {
    cedar_machine::config::parse_env_threads("CEDAR_SWEEP_THREADS")
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// One sweep point failed: which point, and what its worker said while
/// panicking. Raised by [`try_parallel_map`]; [`parallel_map`] re-panics
/// with the same label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Input index of the failing point.
    pub index: usize,
    /// The panic payload, stringified.
    pub message: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep point #{} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for SweepError {}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Apply `f` to every item, possibly in parallel, returning the results
/// in input order.
///
/// Work is distributed by an atomic claim counter, so any number of
/// worker threads yields the same result vector — each item's result
/// depends only on the item, and collection sorts by input index. `f`
/// must therefore be a pure function of its item (every sweep task here
/// builds its own simulator instance, which makes that automatic).
///
/// # Panics
///
/// Re-raises a sweep point's panic, labeled with the point's input index
/// (see [`try_parallel_map`] for the non-panicking form).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    match try_parallel_map(items, f) {
        Ok(out) => out,
        Err(e) => panic!("{e}"),
    }
}

/// [`parallel_map`] with per-point panic isolation: each point runs under
/// `catch_unwind`, and the first failing *input index* (not completion
/// order — deterministic under any thread count) is reported as a
/// [`SweepError`] naming the point and its panic message. Points after a
/// failure still run; their results are discarded.
///
/// # Errors
///
/// The lowest-indexed panicking point, as a [`SweepError`].
pub fn try_parallel_map<T, R, F>(items: &[T], f: F) -> Result<Vec<R>, SweepError>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let run_point = |i: usize, item: &T| -> Result<R, SweepError> {
        catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| SweepError {
            index: i,
            message: payload_message(payload.as_ref()),
        })
    };
    let threads = sweep_threads().min(items.len().max(1));
    let tagged: Vec<(usize, Result<R, SweepError>)> = if threads <= 1 {
        items
            .iter()
            .enumerate()
            .map(|(i, item)| (i, run_point(i, item)))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let mut tagged = Vec::with_capacity(items.len());
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut got = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            got.push((i, run_point(i, item)));
                        }
                        got
                    })
                })
                .collect();
            for w in workers {
                // A worker can only die to a non-unwinding abort; there is
                // nothing to recover there.
                tagged.extend(w.join().expect("sweep worker died outside a point"));
            }
        });
        tagged
    };
    let mut tagged = tagged;
    tagged.sort_unstable_by_key(|&(i, _)| i);
    let mut out = Vec::with_capacity(tagged.len());
    for (_, r) in tagged {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::{parallel_map, try_parallel_map};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        // Uneven work so completion order scrambles under parallelism.
        let out = parallel_map(&items, |&i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn panicking_point_is_labeled_not_poisonous() {
        let items: Vec<usize> = (0..32).collect();
        let err = try_parallel_map(&items, |&i| {
            assert!(i != 13, "point 13 exploded");
            i
        })
        .unwrap_err();
        // The *lowest* failing input index, deterministically, with the
        // panic message attached.
        assert_eq!(err.index, 13);
        assert!(err.message.contains("point 13 exploded"), "{}", err.message);
        assert!(err.to_string().contains("#13"));
    }

    #[test]
    #[should_panic(expected = "sweep point #5 panicked")]
    fn parallel_map_repanics_with_point_label() {
        let items: Vec<usize> = (0..8).collect();
        let _ = parallel_map(&items, |&i| {
            assert!(i != 5, "boom");
            i
        });
    }
}

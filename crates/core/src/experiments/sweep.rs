//! Experiment-level parallel sweep runner.
//!
//! The experiment drivers (Table 2, PPT4, the Perfect suite) are sweeps
//! of independent simulations: every point builds its own [`Machine`] and
//! runs it to completion, so points can execute on any number of host
//! threads without sharing state. The simulator itself is deterministic,
//! which leaves exactly one requirement for reproducible reports:
//! results must be assembled in *input order*, never completion order.
//! [`parallel_map`] guarantees that, so a sweep's rendered output is
//! byte-identical whatever `CEDAR_SWEEP_THREADS` says.
//!
//! This layer is orthogonal to the intra-machine parallel engine
//! (`CEDAR_NUM_THREADS`): that knob shards one machine's clusters across
//! threads, this one runs whole independent machines side by side.
//!
//! [`Machine`]: cedar_machine::machine::Machine

use std::sync::atomic::{AtomicUsize, Ordering};

/// Host threads used for experiment sweeps: `CEDAR_SWEEP_THREADS` when
/// set (minimum 1), otherwise the host's available parallelism.
pub fn sweep_threads() -> usize {
    match std::env::var("CEDAR_SWEEP_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
    }
}

/// Apply `f` to every item, possibly in parallel, returning the results
/// in input order.
///
/// Work is distributed by an atomic claim counter, so any number of
/// worker threads yields the same result vector — each item's result
/// depends only on the item, and collection sorts by input index. `f`
/// must therefore be a pure function of its item (every sweep task here
/// builds its own simulator instance, which makes that automatic).
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = sweep_threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut got = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        got.push((i, f(item)));
                    }
                    got
                })
            })
            .collect();
        for w in workers {
            tagged.extend(w.join().expect("sweep worker panicked"));
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::parallel_map;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        // Uneven work so completion order scrambles under parallelism.
        let out = parallel_map(&items, |&i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(&[] as &[u32], |_| unreachable!());
        assert!(out.is_empty());
    }
}

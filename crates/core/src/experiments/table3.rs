//! Table 3: Cedar execution time, MFLOPS and speed improvement for the
//! Perfect Benchmarks.
//!
//! Columns follow the paper: serial time; speed improvement compiled by
//! KAP/Cedar; speed improvement with the automatable transformations;
//! slowdown without Cedar synchronization (relative to automatable);
//! slowdown without prefetch (relative to the no-synchronization
//! version); Cedar MFLOPS; and the Cray YMP/8 baseline-compiler MFLOPS
//! ratio (paper: harmonic-mean YMP MFLOPS 23.7 ≈ 7.4× Cedar).

use cedar_methodology::metrics::harmonic_mean;
use cedar_perfect::codes::{targets, CodeName};
use cedar_perfect::reference::{paper, ymp};
use cedar_perfect::run::Variant;

use super::suite::PerfectSuite;
use crate::report::{f1, f2, Table};

/// One code's Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    pub code: CodeName,
    pub serial_seconds: f64,
    pub kap_speedup: f64,
    pub auto_speedup: f64,
    /// Time without Cedar sync / time with (≥ 1).
    pub no_sync_slowdown: f64,
    /// Time without prefetch / time without sync (≥ 1).
    pub no_prefetch_slowdown: f64,
    pub cedar_mflops: f64,
    pub ymp_mflops: f64,
    pub ymp_ratio: f64,
    /// Calibration targets (reconstructed; see EXPERIMENTS.md).
    pub target_kap: f64,
    pub target_auto: f64,
}

/// The whole Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    pub rows: Vec<Table3Row>,
    pub cedar_harmonic_mflops: f64,
    pub ymp_harmonic_mflops: f64,
    pub ymp_over_cedar: f64,
}

/// Derive Table 3 from a measured suite.
pub fn run(suite: &PerfectSuite) -> Table3 {
    let mut rows = Vec::new();
    for code in CodeName::ALL {
        let t = targets(code);
        let serial = suite.require(code, Variant::Serial);
        let kap = suite.require(code, Variant::Kap);
        let auto = suite.require(code, Variant::Automatable);
        let nosync = suite.require(code, Variant::AutoNoSync);
        let nopref = suite.require(code, Variant::AutoNoPrefetch);
        let ymp_mflops = ymp(code).mflops;
        rows.push(Table3Row {
            code,
            serial_seconds: serial.seconds,
            kap_speedup: kap.speedup,
            auto_speedup: auto.speedup,
            no_sync_slowdown: nosync.seconds / auto.seconds,
            no_prefetch_slowdown: nopref.seconds / nosync.seconds,
            cedar_mflops: auto.mflops,
            ymp_mflops,
            ymp_ratio: ymp_mflops / auto.mflops,
            target_kap: t.kap_speedup,
            target_auto: t.auto_speedup,
        });
    }
    let cedar_hm = harmonic_mean(&rows.iter().map(|r| r.cedar_mflops).collect::<Vec<_>>());
    let ymp_hm = harmonic_mean(&rows.iter().map(|r| r.ymp_mflops).collect::<Vec<_>>());
    Table3 {
        cedar_harmonic_mflops: cedar_hm,
        ymp_harmonic_mflops: ymp_hm,
        ymp_over_cedar: ymp_hm / cedar_hm,
        rows,
    }
}

impl Table3 {
    /// Render the paper-vs-measured table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 3: Cedar execution time, MFLOPS and speed improvement for the Perfect Benchmarks",
        );
        t.header(&[
            "code",
            "serial s",
            "KAP x",
            "(tgt)",
            "auto x",
            "(tgt)",
            "w/o sync",
            "w/o pref",
            "MFLOPS",
            "YMP/Cedar",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.code.to_string(),
                f1(r.serial_seconds),
                f1(r.kap_speedup),
                format!("({})", f1(r.target_kap)),
                f1(r.auto_speedup),
                format!("({})", f1(r.target_auto)),
                f2(r.no_sync_slowdown),
                f2(r.no_prefetch_slowdown),
                f2(r.cedar_mflops),
                f1(r.ymp_ratio),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "harmonic means: Cedar {:.2} MFLOPS, YMP/8 {:.1} MFLOPS, ratio {:.1} (paper: {:.1} and {:.1}x)\n",
            self.cedar_harmonic_mflops,
            self.ymp_harmonic_mflops,
            self.ymp_over_cedar,
            paper::YMP_HARMONIC_MEAN_MFLOPS,
            paper::YMP_OVER_CEDAR,
        ));
        s
    }
}

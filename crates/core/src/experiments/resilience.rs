//! Resilience study: the machine under deterministic fault injection.
//!
//! The paper measures Cedar healthy; this study asks how gracefully the
//! simulated machine degrades when it is not. Each sweep point runs one
//! workload — the two global-memory Table 1 bandwidth kernels plus one
//! Perfect-suite code — under a [`FaultPlan`]: a clean baseline, three
//! transient-fault rates (packet drops on both omega networks plus
//! forward-network NACKs at half the drop rate), and one scheduled-outage
//! scenario (a switch port down and a global-memory module offline for
//! fixed cycle windows early in the run). The retry/NACK protocols must
//! carry every workload to completion with the *same answer*, only
//! slower; the table reports the slowdown and the recovery traffic
//! (drops, NACKs, retries, timeouts, retry-latency p99) that bought it.
//!
//! Every point is deterministic — the fault plan's seed fixes the exact
//! packets lost — so the whole table is golden-snapshotted like the
//! paper-facing tables, and points run through the
//! [`sweep`](crate::experiments::sweep) runner.

use cedar_fortran::compile::Backend;
use cedar_fortran::restructure::{Level, Restructurer};
use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::machine::RunReport;
use cedar_machine::{FaultPlan, LinkOutage, MachineConfig, MachineError, ModuleOutage};
use cedar_perfect::{spec, CodeName};
use cedar_xylem::costs::XylemCosts;

use crate::experiments::{ckpt, sweep};
use crate::report::{f2, Table};

/// Clusters every point runs on (the full machine).
const CLUSTERS: usize = 4;

/// Cycle budget per point; generous because faulty runs retry.
const LIMIT: u64 = 4_000_000_000;

/// Transient drop rates swept, in doomed packets per million injections
/// (the forward-network NACK rate rides along at half the drop rate).
pub const DROP_RATES_PPM: [u32; 3] = [200, 1_000, 5_000];

/// The workloads under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Rank-64 update, global memory without prefetch (latency-bound).
    Rank64NoPref,
    /// Rank-64 update with prefetch (bandwidth-bound; exercises the
    /// prefetch unit's retry path).
    Rank64Pref,
    /// TRFD at the automatable level (loop scheduling through
    /// global-memory counters; exercises sync-op retries).
    Trfd,
}

impl Workload {
    /// All workloads in report order.
    pub const ALL: [Workload; 3] = [Workload::Rank64NoPref, Workload::Rank64Pref, Workload::Trfd];

    /// Human-readable workload name (the table's first column).
    pub fn label(self) -> &'static str {
        match self {
            Workload::Rank64NoPref => "rank-64 GM/no-pref",
            Workload::Rank64Pref => "rank-64 GM/pref",
            Workload::Trfd => "TRFD automatable",
        }
    }
}

/// One fault scenario applied to every workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scenario {
    /// No fault plan at all — the byte-identical healthy baseline.
    Clean,
    /// Transient packet loss at this drop rate (ppm), NACKs at half.
    Transient(u32),
    /// Scheduled outages: switch port 0 down and global-memory module 0
    /// offline for fixed early windows.
    Outage,
}

impl Scenario {
    /// All scenarios in report order.
    pub fn all() -> Vec<Scenario> {
        let mut v = vec![Scenario::Clean];
        v.extend(DROP_RATES_PPM.iter().map(|&r| Scenario::Transient(r)));
        v.push(Scenario::Outage);
        v
    }

    /// Human-readable scenario name (the table's second column).
    pub fn label(&self) -> String {
        match self {
            Scenario::Clean => "clean".to_string(),
            Scenario::Transient(ppm) => format!("drop {ppm}/M"),
            Scenario::Outage => "outage".to_string(),
        }
    }

    /// The fault plan of this scenario, or `None` for the clean run.
    fn plan(&self, seed: u64) -> Option<FaultPlan> {
        match *self {
            Scenario::Clean => None,
            Scenario::Transient(ppm) => Some(FaultPlan {
                drop_per_million: ppm,
                nack_per_million: ppm / 2,
                ..FaultPlan::none(seed)
            }),
            Scenario::Outage => Some(FaultPlan {
                link_outages: vec![LinkOutage {
                    port: 0,
                    from: 2_000,
                    until: 6_000,
                }],
                module_outages: vec![ModuleOutage {
                    module: 0,
                    from: 2_000,
                    until: 10_000,
                }],
                ..FaultPlan::none(seed)
            }),
        }
    }
}

/// The outcome of one (workload, scenario) point.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceRow {
    pub workload: &'static str,
    pub scenario: String,
    /// Whether the run finished (false: deadlock, fault exhaustion or
    /// cycle-limit exhaustion — the `outcome` says which).
    pub completed: bool,
    /// "ok", or the failure kind.
    pub outcome: String,
    /// Simulated cycles to completion (0 when not completed).
    pub cycles: u64,
    /// Cycles relative to the same workload's clean run.
    pub slowdown: f64,
    /// Packets doomed on either network.
    pub drops: u64,
    /// NACKed operations seen by the CE retry controllers.
    pub nacks: u64,
    /// Packets resent by CE retry controllers (timeout or NACK backoff).
    pub retries: u64,
    /// Reply timeouts declared by CE retry controllers.
    pub timeouts: u64,
    /// Prefetch-element re-requests after a lost reply.
    pub prefetch_retries: u64,
    /// Median retry latency in cycles (issue → resolution).
    pub retry_p50: Option<usize>,
    /// 95th-percentile retry latency in cycles.
    pub retry_p95: Option<usize>,
    /// 99th-percentile retry latency in cycles (issue → resolution).
    pub retry_p99: Option<usize>,
}

/// The whole experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Resilience {
    pub rows: Vec<ResilienceRow>,
    pub n: u32,
    pub seed: u64,
    /// Crash-recovery provenance: one line per point resumed from a
    /// snapshot. Empty for uninterrupted studies.
    pub resumed: Vec<String>,
}

fn run_point(
    w: Workload,
    s: &Scenario,
    n: u32,
    seed: u64,
    ck: Option<&ckpt::Checkpoint>,
) -> cedar_machine::Result<(ResilienceRow, Option<String>)> {
    let mut cfg = MachineConfig::cedar_with_clusters(CLUSTERS).with_env_threads();
    if let Some(plan) = s.plan(seed) {
        cfg = cfg.with_faults(plan);
    }
    let key = format!("res-{}-{}", w.label(), s.label());
    let report = match w {
        Workload::Rank64NoPref | Workload::Rank64Pref => {
            let version = if w == Workload::Rank64Pref {
                Rank64Version::GmPrefetch { block_words: 32 }
            } else {
                Rank64Version::GmNoPrefetch
            };
            ckpt::run_point(ck, &key, cfg, LIMIT, |m| {
                Rank64 { n, k: 64, version }.build(m, CLUSTERS)
            })
        }
        Workload::Trfd => {
            let src = spec(CodeName::Trfd).to_source();
            let compiled = Restructurer::default().restructure(&src, Level::Automatable);
            let backend = Backend::new(XylemCosts::cedar());
            if let Some(ck) = ck {
                let path = ck.snap_path(&key);
                let resuming = ck.resume && path.exists();
                let cfg = cfg.with_checkpoint(ck.every, &path);
                let r = if resuming {
                    backend.resume_on(&compiled, cfg, CLUSTERS, LIMIT, &path)
                } else {
                    backend.execute_on(&compiled, cfg, CLUSTERS, LIMIT)
                };
                if r.is_ok() {
                    let _ = std::fs::remove_file(&path);
                }
                r
            } else {
                backend.execute_on(&compiled, cfg, CLUSTERS, LIMIT)
            }
        }
    };
    Ok(match report {
        Ok(r) => {
            let provenance = ckpt::provenance_of(&key, &r);
            (row_from_report(w, s, &r), provenance)
        }
        // A structured failure is a *result* of the study, not an error
        // of the sweep: the row records what the machine reported.
        Err(MachineError::Deadlock { .. }) => (failed_row(w, s, "deadlock"), None),
        Err(MachineError::Faulted { .. }) => (failed_row(w, s, "fault exhaustion"), None),
        Err(MachineError::CycleLimitExceeded { .. }) => (failed_row(w, s, "cycle limit"), None),
        Err(e) => return Err(e),
    })
}

fn row_from_report(w: Workload, s: &Scenario, r: &RunReport) -> ResilienceRow {
    let c = |k: &str| r.stats.counter(k);
    ResilienceRow {
        workload: w.label(),
        scenario: s.label(),
        completed: true,
        outcome: "ok".to_string(),
        cycles: r.cycles,
        slowdown: 0.0, // filled in against the clean row afterwards
        drops: c("net.fwd.drops") + c("net.rev.drops"),
        nacks: c("fault.nacks"),
        retries: c("fault.retries"),
        timeouts: c("fault.timeouts"),
        prefetch_retries: c("prefetch.retries"),
        retry_p50: r
            .stats
            .histogram("fault.retry_latency")
            .and_then(|h| h.percentile(0.5)),
        retry_p95: r
            .stats
            .histogram("fault.retry_latency")
            .and_then(|h| h.percentile(0.95)),
        retry_p99: r
            .stats
            .histogram("fault.retry_latency")
            .and_then(|h| h.percentile(0.99)),
    }
}

fn failed_row(w: Workload, s: &Scenario, outcome: &str) -> ResilienceRow {
    ResilienceRow {
        workload: w.label(),
        scenario: s.label(),
        completed: false,
        outcome: outcome.to_string(),
        cycles: 0,
        slowdown: 0.0,
        drops: 0,
        nacks: 0,
        retries: 0,
        timeouts: 0,
        prefetch_retries: 0,
        retry_p50: None,
        retry_p95: None,
        retry_p99: None,
    }
}

/// Run the resilience study: every workload at every scenario. `n` is
/// the rank-64 matrix dimension; `seed` fixes the fault plan's random
/// decisions, so a (n, seed) pair names one exact reproducible table.
///
/// # Errors
///
/// Propagates machine *construction* errors (invalid configuration).
/// Structured run failures (deadlock, fault exhaustion, cycle limit) are
/// reported as non-completed rows, not errors.
pub fn run(n: u32, seed: u64) -> cedar_machine::Result<Resilience> {
    run_with(n, seed, None)
}

/// [`run`] under an optional crash-recovery plan: each (workload,
/// scenario) simulation auto-checkpoints to its own snapshot file, and
/// `--resume` continues interrupted points (recorded in
/// [`Resilience::resumed`]).
///
/// # Errors
///
/// As [`run`], plus snapshot read/validation failures.
pub fn run_with(
    n: u32,
    seed: u64,
    ck: Option<&ckpt::Checkpoint>,
) -> cedar_machine::Result<Resilience> {
    let scenarios = Scenario::all();
    let points: Vec<(Workload, Scenario)> = Workload::ALL
        .iter()
        .flat_map(|&w| scenarios.iter().map(move |s| (w, s.clone())))
        .collect();
    let results = sweep::parallel_map(&points, |(w, s)| run_point(*w, s, n, seed, ck));
    let mut rows = Vec::with_capacity(results.len());
    let mut resumed = Vec::new();
    for r in results {
        let (row, provenance) = r?;
        rows.push(row);
        resumed.extend(provenance);
    }
    // Slowdown against each workload's clean baseline.
    for w in Workload::ALL {
        let clean = rows
            .iter()
            .find(|r| r.workload == w.label() && r.scenario == "clean" && r.completed)
            .map(|r| r.cycles);
        if let Some(base) = clean.filter(|&b| b > 0) {
            for r in rows.iter_mut().filter(|r| r.workload == w.label()) {
                if r.completed {
                    r.slowdown = r.cycles as f64 / base as f64;
                }
            }
        }
    }
    Ok(Resilience {
        rows,
        n,
        seed,
        resumed,
    })
}

impl Resilience {
    /// Render the study table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&format!(
            "Resilience: fault injection on Cedar (rank-64 n = {}, seed = {:#x})",
            self.n, self.seed
        ));
        t.header(&[
            "workload",
            "scenario",
            "outcome",
            "cycles",
            "slowdown",
            "drops",
            "nacks",
            "retries",
            "timeouts",
            "pf.retries",
            "retry p50",
            "retry p95",
            "retry p99",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.workload.to_string(),
                r.scenario.clone(),
                r.outcome.clone(),
                if r.completed {
                    r.cycles.to_string()
                } else {
                    "-".to_string()
                },
                if r.completed && r.slowdown > 0.0 {
                    f2(r.slowdown)
                } else {
                    "-".to_string()
                },
                r.drops.to_string(),
                r.nacks.to_string(),
                r.retries.to_string(),
                r.timeouts.to_string(),
                r.prefetch_retries.to_string(),
                r.retry_p50.map_or("-".to_string(), |p| p.to_string()),
                r.retry_p95.map_or("-".to_string(), |p| p.to_string()),
                r.retry_p99.map_or("-".to_string(), |p| p.to_string()),
            ]);
        }
        let mut out = t.render();
        for line in &self.resumed {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

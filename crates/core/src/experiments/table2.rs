//! Table 2: global memory performance under the hardware monitor.
//!
//! Four computational kernels — vector load (VL), tridiagonal
//! matrix–vector multiply (TM), rank-64 update (RK), conjugate gradient
//! (CG) — run on 8, 16 and 32 processors using global data and
//! prefetching. The metrics are first-word **Latency** and
//! **Interarrival** time between the remaining words of a prefetch block,
//! in instruction cycles, measured at the prefetch unit (minimums: 8 and
//! 1). RK uses 256-word prefetch blocks and overlaps aggressively, so it
//! degrades fastest; VL is memory-dominated but uses 32-word compiler
//! blocks; TM and CG contain register–register vector work that lowers
//! their demand (§4.1).
//!
//! The Table 2 numbers now come from the shared stats layer
//! ([`cedar_machine::stats`]): each run's [`RunReport::stats`] delta
//! carries the prefetch counters and the `prefetch.latency` histogram
//! alongside every other subsystem counter, and the per-point registry is
//! attached to the result via [`Table2Kernel::stats`] so latency figures
//! can be cross-checked against network and memory-bank contention.
//!
//! [`RunReport::stats`]: cedar_machine::machine::RunReport::stats

use cedar_kernels::staged::cg::StagedCg;
use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_kernels::staged::tridiag::TridiagMatvec;
use cedar_kernels::staged::vload::VectorLoad;
use cedar_machine::{MachineConfig, MachineStats};

use crate::experiments::ckpt;
use crate::report::{f1, f2, Table};

/// Monitor readings for one kernel at one CE count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorPoint {
    pub ces: usize,
    pub latency: f64,
    pub interarrival: f64,
}

/// One kernel's row set.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Kernel {
    pub name: &'static str,
    pub points: Vec<MonitorPoint>,
    /// Per-run stats delta from the machine-wide instrumentation layer,
    /// aligned with `points` (one registry per CE count).
    pub stats: Vec<MachineStats>,
}

/// The whole experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    pub kernels: Vec<Table2Kernel>,
    /// Crash-recovery provenance: one line per point resumed from a
    /// snapshot. Empty for uninterrupted runs.
    pub resumed: Vec<String>,
}

/// Problem sizes of the four kernels. [`Default`] is the paper-scale
/// experiment; the golden-snapshot tests shrink every kernel to keep a
/// debug-build run affordable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Sizes {
    /// Words each CE loads in VL.
    pub vl_words_per_ce: u32,
    /// TM system size.
    pub tm_n: u32,
    /// RK matrix dimension.
    pub rk_n: u32,
    /// CG system size.
    pub cg_n: u64,
}

impl Default for Table2Sizes {
    fn default() -> Self {
        Table2Sizes {
            vl_words_per_ce: 8192,
            tm_n: 32 * 1024,
            rk_n: 128,
            cg_n: 32 * 1024,
        }
    }
}

/// Run the Table 2 experiment at 8, 16 and 32 CEs, at paper scale.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run() -> cedar_machine::Result<Table2> {
    run_sized(Table2Sizes::default())
}

/// The four monitored kernels, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Vl,
    Tm,
    Rk,
    Cg,
}

impl Kernel {
    const ALL: [Kernel; 4] = [Kernel::Vl, Kernel::Tm, Kernel::Rk, Kernel::Cg];

    fn name(self) -> &'static str {
        match self {
            Kernel::Vl => "VL",
            Kernel::Tm => "TM",
            Kernel::Rk => "RK",
            Kernel::Cg => "CG",
        }
    }
}

/// Run one `(kernel, CE count)` point: build a fresh machine, run the
/// kernel, read the monitor.
fn run_point(
    sizes: Table2Sizes,
    kernel: Kernel,
    ces: usize,
    ck: Option<&ckpt::Checkpoint>,
) -> cedar_machine::Result<(MonitorPoint, MachineStats, Option<String>)> {
    // CG self-schedules over exactly `ces` CEs, the others decompose per
    // cluster.
    let clusters = match kernel {
        Kernel::Cg => ces.div_ceil(8),
        _ => ces / 8,
    };
    let key = format!("t2-{}-{ces}ce", kernel.name());
    let cfg = MachineConfig::cedar_with_clusters(clusters).with_env_threads();
    let r = ckpt::run_point(ck, &key, cfg, 2_000_000_000, |m| match kernel {
        // VL: pure prefetched loads, 32-word compiler blocks.
        Kernel::Vl => VectorLoad {
            words_per_ce: sizes.vl_words_per_ce,
            block: 32,
        }
        .build(m, clusters),
        // TM: tridiagonal matvec.
        Kernel::Tm => TridiagMatvec {
            n: sizes.tm_n,
            sweeps: 2,
        }
        .build(m, clusters),
        // RK: rank-64 update with 256-word blocks, aggressive overlap.
        Kernel::Rk => Rank64 {
            n: sizes.rk_n,
            k: 64,
            version: Rank64Version::GmPrefetch { block_words: 256 },
        }
        .build(m, clusters),
        // CG: 5-diagonal conjugate gradient.
        Kernel::Cg => StagedCg {
            n: sizes.cg_n,
            iterations: 2,
        }
        .build(m, ces),
    })?;
    let provenance = ckpt::provenance_of(&key, &r);
    Ok((
        MonitorPoint {
            ces,
            latency: r.prefetch.mean_latency(),
            interarrival: r.prefetch.mean_interarrival(),
        },
        r.stats,
        provenance,
    ))
}

/// Run the Table 2 experiment with custom kernel sizes. The 12 points
/// (4 kernels × 3 CE counts) are independent simulations and run through
/// the [`sweep`](crate::experiments::sweep) runner; results are
/// assembled in table order whatever the host thread count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_sized(sizes: Table2Sizes) -> cedar_machine::Result<Table2> {
    run_sized_with(sizes, None)
}

/// [`run_sized`] under an optional crash-recovery plan: each of the 12
/// (kernel × CE count) simulations auto-checkpoints to its own snapshot
/// file, and `--resume` continues interrupted points (recorded in
/// [`Table2::resumed`]).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_sized_with(
    sizes: Table2Sizes,
    ck: Option<&ckpt::Checkpoint>,
) -> cedar_machine::Result<Table2> {
    let ce_counts = [8usize, 16, 32];
    let tasks: Vec<(Kernel, usize)> = Kernel::ALL
        .iter()
        .flat_map(|&k| ce_counts.iter().map(move |&ces| (k, ces)))
        .collect();
    let results = crate::experiments::sweep::parallel_map(&tasks, |&(kernel, ces)| {
        run_point(sizes, kernel, ces, ck)
    });

    let mut kernels = Vec::new();
    let mut resumed = Vec::new();
    let mut results = results.into_iter();
    for kernel in Kernel::ALL {
        let mut points = Vec::new();
        let mut stats = Vec::new();
        for _ in &ce_counts {
            let (point, st, provenance) = results.next().expect("one result per task")?;
            points.push(point);
            stats.push(st);
            resumed.extend(provenance);
        }
        kernels.push(Table2Kernel {
            name: kernel.name(),
            points,
            stats,
        });
    }
    Ok(Table2 { kernels, resumed })
}

impl Table2 {
    /// Render the table (latency / interarrival per kernel per CE count).
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 2: global memory performance (first-word latency / interarrival, cycles; minima 8 / 1)",
        );
        t.header(&["kernel", "8 CEs", "16 CEs", "32 CEs"]);
        for k in &self.kernels {
            let mut cols = vec![k.name.to_string()];
            for p in &k.points {
                cols.push(format!("{} / {}", f1(p.latency), f2(p.interarrival)));
            }
            t.row(cols);
        }
        let mut out = t.render();
        for line in &self.resumed {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// Degradation of a kernel's latency from 8 to 32 CEs.
    pub fn latency_growth(&self, name: &str) -> Option<f64> {
        let k = self.kernels.iter().find(|k| k.name == name)?;
        let first = k.points.first()?.latency;
        let last = k.points.last()?.latency;
        Some(last / first)
    }
}

//! Table 1: MFLOPS for the rank-64 update on Cedar.
//!
//! Three memory-system versions (GM/no-pref, GM/pref, GM/cache) across
//! one to four clusters. The paper's values:
//!
//! | version    | 1 cl. | 2 cl. | 3 cl. | 4 cl. |
//! |------------|-------|-------|-------|-------|
//! | GM/no-pref | 14.5  | 29.0  | 43.0  | 55.0  |
//! | GM/pref    | 50.0  | 84.0  | 96.0  | 104.0 |
//! | GM/cache   | 52.0  | 104.0 | 152.0 | 208.0 |

use cedar_kernels::staged::rank64::{Rank64, Rank64Version};
use cedar_machine::{MachineConfig, MachineStats};
use cedar_perfect::reference::paper;

use crate::experiments::ckpt;
use crate::report::{f1, Table};

/// One version's MFLOPS across cluster counts, with the paper's row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    pub version: &'static str,
    pub measured: [f64; 4],
    pub paper: [f64; 4],
    /// Per-run stats delta from the machine-wide instrumentation layer,
    /// one registry per cluster count (index `c` holds `c + 1` clusters).
    pub stats: Vec<MachineStats>,
}

/// The whole experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    pub rows: Vec<Table1Row>,
    /// Matrix dimension used by the simulated kernel.
    pub n: u32,
    /// Crash-recovery provenance: one line per point that was resumed
    /// from a snapshot rather than run start-to-finish. Empty for
    /// uninterrupted tables, so their rendering is unchanged.
    pub resumed: Vec<String>,
}

/// Run the Table 1 experiment. `n` is the matrix dimension (the paper
/// uses 1K; 256 preserves the behaviour at a fraction of the simulation
/// cost because the working sets already exceed/fit the same levels of
/// the hierarchy).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(n: u32) -> cedar_machine::Result<Table1> {
    run_with(n, None)
}

/// [`run`] under an optional crash-recovery plan: each of the 12
/// (version × cluster count) simulations auto-checkpoints to its own
/// snapshot file, and `--resume` continues interrupted points. Resumed
/// points are bit-identical to uninterrupted ones; the `resumed` field
/// records which points were recovered.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_with(n: u32, ck: Option<&ckpt::Checkpoint>) -> cedar_machine::Result<Table1> {
    let versions: [(&'static str, Rank64Version, [f64; 4]); 3] = [
        (
            "GM/no-pref",
            Rank64Version::GmNoPrefetch,
            paper::TABLE1_NOPREF,
        ),
        (
            "GM/pref",
            Rank64Version::GmPrefetch { block_words: 32 },
            paper::TABLE1_PREF,
        ),
        ("GM/cache", Rank64Version::GmCache, paper::TABLE1_CACHE),
    ];
    let mut rows = Vec::new();
    let mut resumed = Vec::new();
    for (name, version, paper_row) in versions {
        let mut measured = [0.0; 4];
        let mut stats = Vec::with_capacity(4);
        for clusters in 1..=4usize {
            let key = format!("t1-{name}-{clusters}cl");
            let cfg = MachineConfig::cedar_with_clusters(clusters).with_env_threads();
            let r = ckpt::run_point(ck, &key, cfg, 8_000_000_000, |m| {
                Rank64 { n, k: 64, version }.build(m, clusters)
            })?;
            resumed.extend(ckpt::provenance_of(&key, &r));
            measured[clusters - 1] = r.mflops;
            stats.push(r.stats);
        }
        rows.push(Table1Row {
            version: name,
            measured,
            paper: paper_row,
            stats,
        });
    }
    Ok(Table1 { rows, n, resumed })
}

impl Table1 {
    /// Render the paper-vs-measured table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&format!(
            "Table 1: MFLOPS for rank-64 update on Cedar (n = {})",
            self.n
        ));
        t.header(&[
            "version", "1 cl.", "2 cl.", "3 cl.", "4 cl.", "", "paper:", "1", "2", "3", "4",
        ]);
        for row in &self.rows {
            let mut cols = vec![row.version.to_string()];
            cols.extend(row.measured.iter().map(|&v| f1(v)));
            cols.push(String::new());
            cols.push(String::new());
            cols.extend(row.paper.iter().map(|&v| f1(v)));
            t.row(cols);
        }
        let mut out = t.render();
        for line in &self.resumed {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// The prefetch improvement factors over no-prefetch per cluster
    /// count (paper: 3.5, 2.9, 2.2, 1.9 — declining with contention).
    pub fn prefetch_factors(&self) -> [f64; 4] {
        let nopref = &self.rows[0].measured;
        let pref = &self.rows[1].measured;
        let mut out = [0.0; 4];
        for i in 0..4 {
            out[i] = pref[i] / nopref[i];
        }
        out
    }

    /// Cache-version improvement factors over no-prefetch (paper: 3.5 →
    /// 3.8, roughly flat — the cache version scales).
    pub fn cache_factors(&self) -> [f64; 4] {
        let nopref = &self.rows[0].measured;
        let cache = &self.rows[2].measured;
        let mut out = [0.0; 4];
        for i in 0..4 {
            out[i] = cache[i] / nopref[i];
        }
        out
    }
}

//! Crash-recovery support for the experiment drivers.
//!
//! Long sweeps die to OOM kills, host reboots and CI timeouts; the
//! machine-level snapshot subsystem
//! ([`cedar_machine::MachineConfig::checkpoint_every`]) exists so they
//! resume instead of restart. This module is the thin experiment-side
//! wrapper: a [`Checkpoint`] plan parsed from driver CLI flags, a
//! per-point snapshot naming scheme, and [`run_point`], which wires the
//! plan into one simulation — auto-checkpointing it while it runs and,
//! under `--resume`, continuing from the point's snapshot when one is on
//! disk. Because a resumed run is bit-identical to an uninterrupted one
//! (`tests/snapshot.rs`), a resumed table is the table: only the
//! `resumed_from` provenance stamped into the [`RunReport`] (and echoed
//! in the rendered report) records that a crash happened at all.

use std::path::PathBuf;

use cedar_machine::ids::CeId;
use cedar_machine::machine::{Machine, RunReport};
use cedar_machine::program::Program;
use cedar_machine::MachineConfig;

/// Default auto-checkpoint interval for experiment runs, in cycles.
/// Coarse on purpose: a snapshot is a full-machine serialization, and
/// the table workloads run tens of millions of cycles.
pub const DEFAULT_EVERY: u64 = 1_000_000;

/// A driver's checkpoint/resume request: snapshot every `every` cycles
/// into per-point files under `dir`, and (with `resume`) continue
/// interrupted points from their snapshots instead of restarting them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Directory holding one `<point-key>.snap` per simulation.
    pub dir: PathBuf,
    /// Auto-checkpoint interval in cycles.
    pub every: u64,
    /// Resume points whose snapshot file exists instead of restarting.
    pub resume: bool,
}

impl Checkpoint {
    /// Parse the shared driver flags out of `args`:
    /// `--checkpoint <dir>` enables checkpointing,
    /// `--checkpoint-every <cycles>` overrides [`DEFAULT_EVERY`], and
    /// `--resume` continues from existing snapshots. Returns `Ok(None)`
    /// when `--checkpoint` is absent. Creates `dir` eagerly so a typoed
    /// parent path fails before hours of simulation, not after.
    ///
    /// # Errors
    ///
    /// A human-readable message for a flag without its value, a
    /// non-numeric interval, `--resume`/`--checkpoint-every` without
    /// `--checkpoint`, or an uncreatable directory.
    pub fn from_cli<I: Iterator<Item = String>>(args: I) -> Result<Option<Checkpoint>, String> {
        let mut dir: Option<PathBuf> = None;
        let mut every = DEFAULT_EVERY;
        let mut saw_every = false;
        let mut resume = false;
        let mut it = args.peekable();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--checkpoint" => {
                    let v = it.next().ok_or("--checkpoint needs a directory")?;
                    dir = Some(PathBuf::from(v));
                }
                "--checkpoint-every" => {
                    let v = it.next().ok_or("--checkpoint-every needs a cycle count")?;
                    every = v
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("--checkpoint-every {v:?} is not a cycle count"))?;
                    if every == 0 {
                        return Err("--checkpoint-every must be positive".to_string());
                    }
                    saw_every = true;
                }
                "--resume" => resume = true,
                _ => {}
            }
        }
        let Some(dir) = dir else {
            if resume {
                return Err("--resume needs --checkpoint <dir> (where the snapshots live)".into());
            }
            if saw_every {
                return Err("--checkpoint-every needs --checkpoint <dir>".into());
            }
            return Ok(None);
        };
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("cannot create checkpoint dir {}: {e}", dir.display()))?;
        Ok(Some(Checkpoint { dir, every, resume }))
    }

    /// The snapshot file for one experiment point. `key` should name the
    /// point uniquely within the experiment (`t1-GM-pref-3cl`); path
    /// separators and whitespace are flattened so every key stays one
    /// file inside `dir`.
    pub fn snap_path(&self, key: &str) -> PathBuf {
        let safe: String = key
            .chars()
            .map(|c| match c {
                '/' | '\\' | ' ' => '-',
                c => c,
            })
            .collect();
        self.dir.join(format!("{safe}.snap"))
    }
}

/// Run one experiment point under an optional checkpoint plan. `build`
/// loads the point's programs into a fresh machine (allocating its
/// counters and barriers), exactly as it would for a plain run — resume
/// requires re-loading the interrupted run's programs, and the snapshot
/// layer verifies the allocations match.
///
/// Without a plan this is `Machine::new` + `run`. With one, the run
/// auto-checkpoints to [`Checkpoint::snap_path`]`(key)`; under
/// `--resume` an existing snapshot continues instead (stamping
/// [`RunReport::resumed_from`]), and is removed once the point
/// completes so a later sweep starts clean.
///
/// # Errors
///
/// Everything the underlying run can return, plus
/// [`cedar_machine::MachineError::Snapshot`] for an unreadable or
/// mismatched snapshot.
pub fn run_point<F>(
    ck: Option<&Checkpoint>,
    key: &str,
    cfg: MachineConfig,
    limit: u64,
    build: F,
) -> cedar_machine::Result<RunReport>
where
    F: FnOnce(&mut Machine) -> Vec<(CeId, Program)>,
{
    let Some(ck) = ck else {
        let mut m = Machine::new(cfg)?;
        let progs = build(&mut m);
        return m.run(progs, limit);
    };
    let path = ck.snap_path(key);
    let resuming = ck.resume && path.exists();
    // The resumed machine keeps checkpointing to the same file, so a
    // second crash resumes from further along, not from the first image.
    let mut m = Machine::new(cfg.with_checkpoint(ck.every, &path))?;
    let progs = build(&mut m);
    let report = if resuming {
        m.resume_from_file(progs, &path, limit)?
    } else {
        m.run(progs, limit)?
    };
    let _ = std::fs::remove_file(&path);
    Ok(report)
}

/// Render the provenance footer for a batch of completed points: one
/// line per resumed run, empty when nothing was resumed (the common
/// case, so uninterrupted reports are unchanged).
pub fn provenance_lines<'a, I>(points: I) -> String
where
    I: IntoIterator<Item = (&'a str, &'a RunReport)>,
{
    let mut out = String::new();
    for (key, r) in points {
        if let Some(p) = &r.resumed_from {
            out.push_str(&format!("resumed: {key} <- {}\n", p.display()));
        }
    }
    out
}

/// Convenience for experiments that track provenance as strings: the
/// footer line for one resumed report, if it was resumed.
pub fn provenance_of(key: &str, r: &RunReport) -> Option<String> {
    r.resumed_from
        .as_ref()
        .map(|p| format!("resumed: {key} <- {}", p.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter()
            .map(|s| (*s).to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn cli_parsing_covers_the_flag_grammar() {
        assert_eq!(Checkpoint::from_cli(args(&["--smoke"])).unwrap(), None);
        let dir = std::env::temp_dir().join(format!("cedar-ckpt-cli-{}", std::process::id()));
        let d = dir.to_str().unwrap();
        let ck = Checkpoint::from_cli(args(&["--checkpoint", d]))
            .unwrap()
            .unwrap();
        assert_eq!(ck.every, DEFAULT_EVERY);
        assert!(!ck.resume);
        let ck = Checkpoint::from_cli(args(&[
            "--checkpoint",
            d,
            "--checkpoint-every",
            "4096",
            "--resume",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!((ck.every, ck.resume), (4096, true));
        assert!(ck.dir.is_dir(), "the directory is created eagerly");
        assert!(Checkpoint::from_cli(args(&["--checkpoint"])).is_err());
        assert!(Checkpoint::from_cli(args(&["--resume"])).is_err());
        assert!(Checkpoint::from_cli(args(&["--checkpoint-every", "9"])).is_err());
        assert!(
            Checkpoint::from_cli(args(&["--checkpoint", d, "--checkpoint-every", "soon"])).is_err()
        );
        assert!(
            Checkpoint::from_cli(args(&["--checkpoint", d, "--checkpoint-every", "0"])).is_err()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snap_paths_flatten_hostile_keys() {
        let ck = Checkpoint {
            dir: PathBuf::from("/tmp/snaps"),
            every: 1,
            resume: false,
        };
        assert_eq!(
            ck.snap_path("t1 GM/pref 3cl"),
            PathBuf::from("/tmp/snaps/t1-GM-pref-3cl.snap")
        );
    }
}

//! Experiment runners: one per table/figure of the paper's evaluation.
//!
//! | module | reproduces |
//! |---|---|
//! | [`table1`] | Table 1 — rank-64 update MFLOPS, three memory versions |
//! | [`table2`] | Table 2 — prefetch latency/interarrival for VL, TM, RK, CG |
//! | [`suite`]  | shared Perfect-suite measurement behind Tables 3–6 and Fig. 3 |
//! | [`table3`] | Table 3 — Perfect times, MFLOPS, speed improvements |
//! | [`table4`] | Table 4 — hand-optimized Perfect codes |
//! | [`table5`] | Table 5 — instability (Cedar, Cray 1, YMP/8) |
//! | [`table6`] | Table 6 — restructuring-efficiency band counts |
//! | [`fig3`]   | Figure 3 — YMP vs Cedar efficiency scatter |
//! | [`ppt4`]   | §4.3 PPT4 — CG scalability vs the CM-5 |
//! | [`resilience`] | fault-injection study: the machine degrading gracefully |
//! | [`sweep`]  | parallel sweep runner shared by the drivers above |
//! | [`ckpt`]   | checkpoint/resume plan shared by the drivers (crash recovery) |

pub mod ckpt;
pub mod fig3;
pub mod ppt4;
pub mod resilience;
pub mod suite;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
#[cfg(test)]
mod tests;

pub use suite::PerfectSuite;

//! Unit tests of the table/figure derivations over a synthetic suite
//! (no simulation: the logic, classifications and renders).

use cedar_perfect::codes::CodeName;
use cedar_perfect::run::{CodeRun, Variant};

use super::suite::PerfectSuite;
use super::{fig3, table3, table4, table5, table6};

/// A synthetic suite: every code gets serial + kap + auto + ablations;
/// TRFD gets a hand run.
fn synthetic() -> PerfectSuite {
    let mut runs = Vec::new();
    for (i, code) in CodeName::ALL.into_iter().enumerate() {
        let serial_s = 100.0 + i as f64 * 10.0;
        let auto_speedup = 2.0 + i as f64; // 2..14
        let mk = |variant, speedup: f64, mflops: f64| CodeRun {
            code,
            variant,
            seconds: serial_s / speedup,
            mflops,
            speedup,
            sim_cycles: 1000,
        };
        runs.push(mk(Variant::Serial, 1.0, 0.5));
        runs.push(mk(Variant::Kap, 1.2, 0.6));
        runs.push(mk(Variant::Automatable, auto_speedup, auto_speedup));
        runs.push(mk(
            Variant::AutoNoSync,
            auto_speedup / 1.1,
            auto_speedup / 1.1,
        ));
        runs.push(mk(
            Variant::AutoNoPrefetch,
            auto_speedup / 1.5,
            auto_speedup / 1.5,
        ));
        if code == CodeName::Trfd {
            runs.push(mk(Variant::Hand, 30.0, 20.0));
        }
    }
    PerfectSuite::from_runs(runs, 4)
}

#[test]
fn table3_rows_and_means() {
    let t = table3::run(&synthetic());
    assert_eq!(t.rows.len(), 13);
    for r in &t.rows {
        assert!(r.no_sync_slowdown > 1.0 && r.no_sync_slowdown < 1.2);
        assert!(r.no_prefetch_slowdown > 1.2 && r.no_prefetch_slowdown < 1.5);
        assert!(r.ymp_ratio > 0.0);
    }
    assert!(t.cedar_harmonic_mflops > 0.0);
    assert!(t.ymp_over_cedar > 1.0);
    assert!(t.render().contains("harmonic means"));
}

#[test]
fn table4_only_hand_codes() {
    let t = table4::run(&synthetic());
    assert_eq!(t.rows.len(), 1);
    assert_eq!(t.rows[0].code, CodeName::Trfd);
    // improvement = nosync.seconds / hand.seconds.
    let expected = (330.0 / (14.0 / 1.1)) / (330.0 / 30.0);
    assert!(
        (t.rows[0].improvement - expected).abs() < 1e-9,
        "improvement {} vs {}",
        t.rows[0].improvement,
        expected
    );
    assert!(t.render().contains("TRFD"));
}

#[test]
fn table5_uses_automatable_rates() {
    let t = table5::run(&synthetic());
    // Rates 2..14 -> In(13,0) = 7.
    assert!((t.cedar.in_0.unwrap() - 7.0).abs() < 1e-9);
    assert!(t.cedar.passes);
    assert!(!t.ymp.passes, "the YMP reference fails PPT2");
    assert!(t.render().contains("In(13,0)"));
}

#[test]
fn table6_band_counts_over_synthetic_speedups() {
    let t = table6::run(&synthetic());
    // Speedups 2..14 on 32 CEs: >= 16 high (none), >= 3.2 intermediate
    // (3.2..14 -> 12 codes: speedups 4..14 plus 3? speedups are 2,3,..,14:
    // 2 and 3 are below 3.2 -> 2 unacceptable, 11 intermediate).
    assert_eq!(t.cedar.high, 0);
    assert_eq!(t.cedar.intermediate, 11);
    assert_eq!(t.cedar.unacceptable, 2);
    // The YMP column is reference data (paper's 0/6/7).
    assert_eq!(
        (t.ymp.high, t.ymp.intermediate, t.ymp.unacceptable),
        cedar_perfect::reference::paper::YMP_BANDS
    );
}

#[test]
fn fig3_restricts_to_manual_ensemble() {
    let f = fig3::run(&synthetic());
    // Only the 7 manually-optimized codes are plotted.
    assert_eq!(f.points.len(), 7);
    let total = f.cedar_counts.0 + f.cedar_counts.1 + f.cedar_counts.2;
    assert_eq!(total, 7);
    let s = f.render();
    assert!(s.contains("TRFD") && s.contains("YMP Ep"));
    // TRFD's hand speedup 30 -> efficiency ~0.94 -> high.
    let trfd = f.points.iter().find(|p| p.code == CodeName::Trfd).unwrap();
    assert!(trfd.cedar_efficiency > 0.9);
}

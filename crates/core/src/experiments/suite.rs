//! Shared measurement of the whole Perfect suite: every code at every
//! Table 3 / Table 4 configuration, measured once and reused by the
//! Table 3–6 and Fig. 3 experiments.

use std::collections::HashMap;

use cedar_perfect::codes::CodeName;
use cedar_perfect::run::{CodeRun, CodeStudy, Variant};

/// All measurements of the Perfect suite on the simulated Cedar.
#[derive(Debug, Clone)]
pub struct PerfectSuite {
    runs: HashMap<(CodeName, Variant), CodeRun>,
    pub clusters: usize,
}

impl PerfectSuite {
    /// Measure the full suite (13 codes × up to 6 variants). This is the
    /// expensive step behind Tables 3–6 and Fig. 3: a few minutes of
    /// simulation. Every code is an independent study, so the codes run
    /// through the [`sweep`](crate::experiments::sweep) runner; results
    /// are keyed by `(code, variant)`, so the assembly order never shows.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn measure(clusters: usize) -> cedar_machine::Result<PerfectSuite> {
        let codes: Vec<CodeName> = CodeName::ALL.to_vec();
        let per_code = crate::experiments::sweep::parallel_map(&codes, |&code| {
            let study = CodeStudy::new(code, clusters)?;
            let mut out = Vec::new();
            for v in Variant::ALL {
                if let Some(run) = study.run(v)? {
                    out.push(run);
                }
            }
            Ok::<_, cedar_machine::MachineError>(out)
        });
        let mut runs = Vec::new();
        for code_runs in per_code {
            runs.extend(code_runs?);
        }
        Ok(PerfectSuite::from_runs(runs, clusters))
    }

    /// Build a suite from precomputed runs (testing and offline
    /// analysis).
    pub fn from_runs(runs: Vec<CodeRun>, clusters: usize) -> PerfectSuite {
        PerfectSuite {
            runs: runs.into_iter().map(|r| ((r.code, r.variant), r)).collect(),
            clusters,
        }
    }

    /// One measurement, if it exists (Hand only for Table 4 codes).
    pub fn get(&self, code: CodeName, v: Variant) -> Option<&CodeRun> {
        self.runs.get(&(code, v))
    }

    /// The measurement, panicking when absent.
    ///
    /// # Panics
    ///
    /// Panics for Hand variants of codes without one.
    pub fn require(&self, code: CodeName, v: Variant) -> &CodeRun {
        self.get(code, v)
            .unwrap_or_else(|| panic!("no run for {code} {v}"))
    }

    /// The best manually-achieved speedup: hand where available, else
    /// automatable — the Fig. 3 Cedar ensemble.
    pub fn best_speedup(&self, code: CodeName) -> f64 {
        self.get(code, Variant::Hand)
            .or_else(|| self.get(code, Variant::Automatable))
            .map(|r| r.speedup)
            .unwrap_or(1.0)
    }

    /// Automatable MFLOPS ensemble in code order (Table 5's Cedar row).
    pub fn automatable_mflops(&self) -> Vec<f64> {
        CodeName::ALL
            .iter()
            .map(|&c| self.require(c, Variant::Automatable).mflops)
            .collect()
    }

    /// Automatable speedups in code order (Table 6's Cedar column).
    pub fn automatable_speedups(&self) -> Vec<f64> {
        CodeName::ALL
            .iter()
            .map(|&c| self.require(c, Variant::Automatable).speedup)
            .collect()
    }
}

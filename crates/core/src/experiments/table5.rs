//! Table 5: instability for the Perfect codes.
//!
//! `In(13, e)` over the 13-code MFLOPS ensembles of three machines:
//!
//! |         | In(13,0) | In(13,2) | In(13,6) |
//! |---------|----------|----------|----------|
//! | Cedar   | 63.4     | 5.8      | —        |
//! | Cray 1ᵃ | —        | 10.9     | 4.6      |
//! | YMP/8   | 75.3     | 29.0     | 5.3      |
//!
//! ᵃ with modern compiler. Cedar and the Cray 1 reach workstation-level
//! stability (In ≤ 6) with two exceptions; the YMP needs six — about half
//! the codes — and therefore fails PPT2.

use cedar_methodology::ppt::{ppt2, Ppt2Report};
use cedar_perfect::codes::CodeName;
use cedar_perfect::reference::{cray1_mflops, paper, ymp_parallel_mflops};

use super::suite::PerfectSuite;
use crate::report::{f1, Table};

/// The whole Table 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    pub cedar: Ppt2Report,
    pub cray1: Ppt2Report,
    pub ymp: Ppt2Report,
}

/// Derive Table 5: Cedar's ensemble is measured on the simulator; the
/// Cray rows come from the reference datasets.
pub fn run(suite: &PerfectSuite) -> Table5 {
    let cedar_rates = suite.automatable_mflops();
    let cray1_rates: Vec<f64> = CodeName::ALL.iter().map(|&c| cray1_mflops(c)).collect();
    let ymp_rates: Vec<f64> = CodeName::ALL
        .iter()
        .map(|&c| ymp_parallel_mflops(c))
        .collect();
    Table5 {
        cedar: ppt2("Cedar", &cedar_rates, 2),
        cray1: ppt2("Cray 1", &cray1_rates, 2),
        ymp: ppt2("YMP/8", &ymp_rates, 2),
    }
}

impl Table5 {
    /// Render the paper-vs-measured table.
    pub fn render(&self) -> String {
        let mut t = Table::new("Table 5: instability for Perfect codes");
        t.header(&[
            "machine",
            "In(13,0)",
            "In(13,2)",
            "In(13,6)",
            "excl. needed",
            "PPT2",
        ]);
        let fmt = |r: &Ppt2Report| -> Vec<String> {
            vec![
                r.machine.clone(),
                r.in_0.map(f1).unwrap_or_default(),
                r.in_2.map(f1).unwrap_or_default(),
                r.in_6.map(f1).unwrap_or_default(),
                r.exclusions_needed
                    .map(|e| e.to_string())
                    .unwrap_or_else(|| ">6".into()),
                if r.passes { "pass" } else { "FAIL" }.into(),
            ]
        };
        t.row(fmt(&self.cedar));
        t.row(fmt(&self.cray1));
        t.row(fmt(&self.ymp));
        let mut s = t.render();
        s.push_str(&format!(
            "paper: Cedar {:.1}/{:.1}/-, Cray1 -/{:.1}/{:.1}, YMP {:.1}/{:.1}/{:.1}\n",
            paper::CEDAR_IN_13_0,
            paper::CEDAR_IN_13_2,
            paper::CRAY1_IN_13_2,
            paper::CRAY1_IN_13_6,
            paper::YMP_IN_13_0,
            paper::YMP_IN_13_2,
            paper::YMP_IN_13_6,
        ));
        s
    }
}

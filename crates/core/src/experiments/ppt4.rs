//! The PPT4 scalability study (§4.3): conjugate gradient on Cedar versus
//! banded matrix–vector products on the CM-5.
//!
//! The paper measures CG on Cedar for 2–32 processors and
//! `1K ≤ N ≤ 172K`: scalable **high** performance for matrices larger
//! than roughly 10–16K up to the largest runs (34–48 MFLOPS at 32 CEs),
//! scalable **intermediate** performance below. The CM-5 (no FP
//! accelerators, \[FWPS92\]) delivers 28–32 MFLOPS at bandwidth 3 and
//! 58–67 MFLOPS at bandwidth 11 on 32 processors for 16K ≤ N ≤ 256K —
//! intermediate, never high, relative to 32/256/512 processors. The
//! per-processor MFLOPS of the two systems are roughly equivalent.

use cedar_kernels::staged::banded::BandedMatvec;
use cedar_kernels::staged::cg::StagedCg;
use cedar_machine::machine::RunReport;
use cedar_methodology::ppt::{ppt4 as eval_ppt4, Ppt4Report, ScalePoint};
use cedar_perfect::reference::{cm5_banded_series, paper};

use crate::experiments::ckpt;
use crate::report::{f1, Table};

/// The whole study.
#[derive(Debug, Clone, PartialEq)]
pub struct Ppt4Study {
    /// Cedar CG measurements.
    pub cedar: Ppt4Report,
    /// CM-5 banded-matvec reference points (32 processors), classified.
    pub cm5: Ppt4Report,
    /// MFLOPS of the largest-N Cedar runs per processor count.
    pub cedar_peak_mflops: Vec<(u32, f64)>,
    /// Cedar's own banded matvec at the CM-5 comparison point
    /// (32 CEs, N = 64K): `(bandwidth, MFLOPS)` — §4.3 notes the two
    /// machines' per-processor rates are roughly equivalent.
    pub cedar_banded: Vec<(u32, f64)>,
    /// Problem sizes this study swept.
    pub sizes: Vec<u64>,
    /// Processor counts this study swept.
    pub procs: Vec<u32>,
    /// Total simulated cycles across every run of the sweep (the
    /// simulator-throughput benchmark divides wall time by this).
    pub total_cycles: u64,
    /// Crash-recovery provenance: one line per sweep point resumed from
    /// a snapshot. Empty for uninterrupted studies.
    pub resumed: Vec<String>,
}

/// Problem sizes of the study (the paper's 1K…172K sweep).
pub fn sizes() -> Vec<u64> {
    vec![1_024, 4_096, 10_240, 16_384, 65_536, 176_128]
}

/// Processor counts of the study.
pub fn processor_counts() -> Vec<u32> {
    vec![2, 4, 8, 16, 32]
}

/// Run the study at paper scale. `iterations` CG iterations per point
/// (2 suffices for a stable rate).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(iterations: u32) -> cedar_machine::Result<Ppt4Study> {
    run_swept(iterations, &sizes(), &processor_counts(), 65_536)
}

/// Run the study over custom sweeps: `ns` problem sizes, `procs`
/// processor counts, and `banded_n` for the CM-5 comparison matvec. The
/// golden-snapshot tests use a shrunken sweep.
///
/// Every `(processors, N)` point is an independent pair of simulations —
/// the 1-CE baseline at N (for speedup) and the P-CE run — so the grid
/// goes through the [`sweep`](crate::experiments::sweep) runner and is
/// reassembled in sweep order whatever the host thread count.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_swept(
    iterations: u32,
    ns: &[u64],
    procs: &[u32],
    banded_n: u64,
) -> cedar_machine::Result<Ppt4Study> {
    run_swept_with(iterations, ns, procs, banded_n, None)
}

/// Run one CG simulation of the sweep, recoverably when a checkpoint
/// plan is active. The key must be unique across the *whole* grid — the
/// 1-CE baseline for the same N runs concurrently under several P
/// points, so baselines are keyed by both P and N.
fn cg_point(
    cg: &StagedCg,
    ces: usize,
    key: &str,
    ck: Option<&ckpt::Checkpoint>,
) -> cedar_machine::Result<RunReport> {
    let Some(ck) = ck else {
        return cg.report_on_cedar(ces);
    };
    let path = ck.snap_path(key);
    let r = cg.report_on_cedar_recoverable(ces, &path, ck.every, ck.resume)?;
    let _ = std::fs::remove_file(&path);
    Ok(r)
}

/// [`run_swept`] under an optional crash-recovery plan: every simulation
/// of the grid (baseline, P-CE run, banded comparison) auto-checkpoints
/// to its own snapshot file, and `--resume` continues interrupted points
/// (recorded in [`Ppt4Study::resumed`]).
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run_swept_with(
    iterations: u32,
    ns: &[u64],
    procs: &[u32],
    banded_n: u64,
    ck: Option<&ckpt::Checkpoint>,
) -> cedar_machine::Result<Ppt4Study> {
    let grid: Vec<(u32, u64)> = procs
        .iter()
        .flat_map(|&p| ns.iter().map(move |&n| (p, n)))
        .collect();
    let measured = crate::experiments::sweep::parallel_map(&grid, |&(p, n)| {
        let cg = StagedCg { n, iterations };
        let base_key = format!("ppt4-base-p{p}-n{n}");
        let run_key = format!("ppt4-p{p}-n{n}");
        let one = cg_point(&cg, 1, &base_key, ck)?;
        let r = cg_point(&cg, p as usize, &run_key, ck)?;
        let point = ScalePoint {
            processors: p,
            n,
            mflops: r.mflops,
            speedup: r.mflops / one.mflops.max(1e-9),
        };
        let mut provenance = Vec::new();
        provenance.extend(ckpt::provenance_of(&base_key, &one));
        provenance.extend(ckpt::provenance_of(&run_key, &r));
        Ok::<_, cedar_machine::MachineError>((point, one.cycles + r.cycles, provenance))
    });

    let mut points = Vec::new();
    let mut total_cycles = 0u64;
    let mut resumed = Vec::new();
    for res in measured {
        let (point, cycles, provenance) = res?;
        points.push(point);
        total_cycles += cycles;
        resumed.extend(provenance);
    }
    let peak = procs
        .iter()
        .map(|&p| {
            let best = points
                .iter()
                .filter(|pt| pt.processors == p)
                .map(|pt| pt.mflops)
                .fold(0.0f64, f64::max);
            (p, best)
        })
        .collect();
    let cedar = eval_ppt4("Cedar CG", points);

    // CM-5 reference: speedups relative to the implied single-processor
    // rate are not published; the paper classifies its performance as
    // intermediate relative to its processor counts. We encode that by
    // the quoted efficiency regime (per-processor MFLOPS ≈ 1–2 against a
    // ~5 MFLOPS/processor nominal rate without FP accelerators).
    let cm5_points: Vec<ScalePoint> = cm5_banded_series()
        .into_iter()
        .map(|pt| ScalePoint {
            processors: 32,
            n: pt.n,
            mflops: pt.mflops,
            // Intermediate regime: efficiency between 1/(2 log2 32)=0.1
            // and 0.5 — encode via the quoted rates against a 160 MFLOPS
            // 32-processor nominal peak.
            speedup: pt.mflops / 160.0 * 32.0,
        })
        .collect();
    let cm5 = eval_ppt4("CM-5 banded matvec", cm5_points);

    // Cedar's own banded matvec at the CM-5 comparison sizes.
    let mut cedar_banded = Vec::new();
    for bw in [3u32, 11] {
        let k = BandedMatvec::new(banded_n, bw);
        let key = format!("ppt4-banded-bw{bw}");
        let r = if let Some(ck) = ck {
            let path = ck.snap_path(&key);
            let r = k.report_on_cedar_recoverable(4, &path, ck.every, ck.resume)?;
            let _ = std::fs::remove_file(&path);
            r
        } else {
            k.report_on_cedar(4)?
        };
        resumed.extend(ckpt::provenance_of(&key, &r));
        total_cycles += r.cycles;
        cedar_banded.push((bw, r.mflops));
    }

    Ok(Ppt4Study {
        cedar,
        cm5,
        cedar_peak_mflops: peak,
        cedar_banded,
        sizes: ns.to_vec(),
        procs: procs.to_vec(),
        total_cycles,
        resumed,
    })
}

impl Ppt4Study {
    /// Render the study.
    pub fn render(&self) -> String {
        let mut t = Table::new("PPT4: Cedar CG scalability (MFLOPS [band] by processors x N)");
        let mut header: Vec<String> = vec!["P \\ N".into()];
        header.extend(self.sizes.iter().map(|n| format!("{}K", n / 1024)));
        t.header(&header.iter().map(String::as_str).collect::<Vec<_>>());
        for &p in &self.procs {
            let mut cols = vec![p.to_string()];
            for &n in &self.sizes {
                if let Some((pt, band)) = self
                    .cedar
                    .points
                    .iter()
                    .find(|(pt, _)| pt.processors == p && pt.n == n)
                {
                    cols.push(format!(
                        "{} [{}]",
                        f1(pt.mflops),
                        band.to_string().chars().next().unwrap_or('?')
                    ));
                } else {
                    cols.push(String::new());
                }
            }
            t.row(cols);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "Cedar 32-CE CG delivers up to {:.1} MFLOPS (paper: {:.0}-{:.0}); scalable up to P={:?}\n",
            self.cedar_peak_mflops
                .iter()
                .map(|&(_, m)| m)
                .fold(0.0, f64::max),
            paper::CEDAR_CG_MFLOPS_RANGE.0,
            paper::CEDAR_CG_MFLOPS_RANGE.1,
            self.cedar.scalable_up_to,
        ));
        let mut t2 = Table::new("CM-5 banded matvec reference (32 processors, no FP accelerators)");
        t2.header(&["bandwidth", "N", "MFLOPS", "band"]);
        for (pt, band) in &self.cm5.points {
            let bw = if pt.mflops < 40.0 { 3 } else { 11 };
            t2.row(vec![
                bw.to_string(),
                format!("{}K", pt.n / 1024),
                f1(pt.mflops),
                band.to_string(),
            ]);
        }
        s.push('\n');
        s.push_str(&t2.render());
        s.push_str(&format!(
            "verdict: Cedar scalable with high performance for large N; CM-5 scalable with intermediate performance ({} points, none high)\n",
            self.cm5.points.len()
        ));
        for (bw, mf) in &self.cedar_banded {
            s.push_str(&format!(
                "Cedar banded matvec BW={bw} at N=64K, 32 CEs: {mf:.1} MFLOPS ({:.2}/CE; CM-5: {:.2}/proc at BW={bw}) — per-processor rates of the same order\n",
                mf / 32.0,
                if *bw == 3 { 30.0 / 32.0 } else { 62.5 / 32.0 },
            ));
        }
        for line in &self.resumed {
            s.push_str(line);
            s.push('\n');
        }
        s
    }

    /// Smallest N at which 32-CE Cedar reaches the high band (the paper
    /// puts the crossover between 10K and 16K).
    pub fn high_band_crossover(&self) -> Option<u64> {
        let mut ns: Vec<u64> = self
            .cedar
            .points
            .iter()
            .filter(|(pt, b)| pt.processors == 32 && *b == cedar_methodology::bands::Band::High)
            .map(|(pt, _)| pt.n)
            .collect();
        ns.sort_unstable();
        ns.first().copied()
    }
}

//! Figure 3: Cray YMP/8 vs Cedar efficiency scatter for the manually
//! optimized Perfect codes.
//!
//! Each point is one code; its x-coordinate is the 8-CPU YMP efficiency
//! of the manually optimized version, its y-coordinate the 32-CE Cedar
//! efficiency (hand where available, automatable otherwise). Bands: High
//! (E ≥ 1/2), Intermediate (E ≥ 1/(2 log₂ P)), Unacceptable. Paper: the
//! YMP is about half high / half intermediate with one unacceptable;
//! Cedar about one-quarter high, three-quarters intermediate, none
//! unacceptable.

use cedar_methodology::bands::{classify_efficiency, Band};
use cedar_perfect::codes::CodeName;
use cedar_perfect::reference::ymp;

use super::suite::PerfectSuite;
use crate::report::{f2, Table};

/// One scatter point.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Point {
    pub code: CodeName,
    pub cedar_efficiency: f64,
    pub cedar_band: Band,
    /// Present only for the codes the YMP study optimized manually.
    pub ymp_efficiency: Option<f64>,
    pub ymp_band: Option<Band>,
}

/// The whole figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    pub points: Vec<Fig3Point>,
    pub cedar_counts: (usize, usize, usize),
    pub ymp_counts: (usize, usize, usize),
}

/// Derive Fig. 3 from the measured suite and the YMP reference. Only the
/// manually optimized codes are plotted, as in the paper.
pub fn run(suite: &PerfectSuite) -> Fig3 {
    let mut points = Vec::new();
    let mut cc = (0, 0, 0);
    let mut yc = (0, 0, 0);
    for code in CodeName::ALL {
        if cedar_perfect::codes::hand_spec(code).is_none() && ymp(code).manual_speedup.is_none() {
            continue;
        }
        let cedar_eff = suite.best_speedup(code) / 32.0;
        let cedar_band = classify_efficiency(cedar_eff, 32);
        match cedar_band {
            Band::High => cc.0 += 1,
            Band::Intermediate => cc.1 += 1,
            Band::Unacceptable => cc.2 += 1,
        }
        let (ymp_eff, ymp_band) = match ymp(code).manual_speedup {
            Some(s) => {
                let e = s / 8.0;
                let b = classify_efficiency(e, 8);
                match b {
                    Band::High => yc.0 += 1,
                    Band::Intermediate => yc.1 += 1,
                    Band::Unacceptable => yc.2 += 1,
                }
                (Some(e), Some(b))
            }
            None => (None, None),
        };
        points.push(Fig3Point {
            code,
            cedar_efficiency: cedar_eff,
            cedar_band,
            ymp_efficiency: ymp_eff,
            ymp_band,
        });
    }
    Fig3 {
        points,
        cedar_counts: cc,
        ymp_counts: yc,
    }
}

impl Fig3 {
    /// Render the point list plus an ASCII scatter.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 3: Cray YMP/8 vs Cedar efficiency (manually optimized Perfect codes)",
        );
        t.header(&["code", "Cedar Ep", "band", "YMP Ep", "band"]);
        for p in &self.points {
            t.row(vec![
                p.code.to_string(),
                f2(p.cedar_efficiency),
                p.cedar_band.to_string(),
                p.ymp_efficiency.map(f2).unwrap_or_default(),
                p.ymp_band.map(|b| b.to_string()).unwrap_or_default(),
            ]);
        }
        let mut s = t.render();
        s.push_str(&self.ascii_scatter());
        s.push_str(&format!(
            "Cedar bands (H/I/U): {}/{}/{} — paper: ~1/4 high, ~3/4 intermediate, none unacceptable\n",
            self.cedar_counts.0, self.cedar_counts.1, self.cedar_counts.2
        ));
        s.push_str(&format!(
            "YMP bands   (H/I/U): {}/{}/{} — paper: ~half high, half intermediate, one unacceptable\n",
            self.ymp_counts.0, self.ymp_counts.1, self.ymp_counts.2
        ));
        s
    }

    /// A coarse ASCII scatter (x = YMP efficiency, y = Cedar efficiency),
    /// marking each code by its first letter.
    pub fn ascii_scatter(&self) -> String {
        const W: usize = 41;
        const H: usize = 21;
        let mut grid = vec![vec![' '; W]; H];
        // Band guides at efficiency 0.5 and 0.1 on both axes.
        let ymark = |e: f64| ((1.0 - e.clamp(0.0, 1.0)) * (H - 1) as f64).round() as usize;
        let xmark = |e: f64| (e.clamp(0.0, 1.0) * (W - 1) as f64).round() as usize;
        for (y, row) in grid.iter_mut().enumerate() {
            for (x, cell) in row.iter_mut().enumerate() {
                if y == ymark(0.5) || x == xmark(0.5) {
                    *cell = '.';
                }
                if y == ymark(0.1) || x == xmark(1.0 / 6.0) {
                    *cell = ':';
                }
            }
        }
        for p in &self.points {
            if let Some(xe) = p.ymp_efficiency {
                let x = xmark(xe);
                let y = ymark(p.cedar_efficiency);
                grid[y][x] = p.code.to_string().chars().next().unwrap_or('?');
            }
        }
        let mut s = String::from(
            "Cedar Ep ^  (x-axis: YMP/8 Ep; '.' = high band edge, ':' = acceptable edge)\n",
        );
        for row in grid {
            s.push_str("  |");
            s.extend(row);
            s.push('\n');
        }
        s.push_str("  +");
        s.push_str(&"-".repeat(W));
        s.push_str("> YMP Ep\n");
        s
    }
}

//! Table 4: execution times for the manually altered Perfect codes.
//!
//! The paper reports hand-optimized times and the improvement over the
//! automatable version *with prefetch and without Cedar synchronization*
//! (its footnote): ARC2D 68 s (2.1×), BDNA 70 s (1.7×), FLO52 33 s,
//! DYFESM 31 s, TRFD 7.5 s (2.8×), QCD 21 s (11.4× — speed improvement
//! 20.8 vs the 1.8 automatable), SPICE ≈ 26 s.

use cedar_perfect::codes::{targets, CodeName};
use cedar_perfect::run::Variant;

use super::suite::PerfectSuite;
use crate::report::{f1, opt_f1, Table};

/// One hand-optimized code's row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    pub code: CodeName,
    pub hand_seconds: f64,
    /// Improvement over automatable-with-prefetch-without-sync.
    pub improvement: f64,
    /// Speed improvement of the hand version over serial.
    pub hand_speedup: f64,
    pub paper_seconds: Option<f64>,
    pub paper_improvement: Option<f64>,
}

/// The whole Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    pub rows: Vec<Table4Row>,
}

/// Derive Table 4 from a measured suite.
pub fn run(suite: &PerfectSuite) -> Table4 {
    let mut rows = Vec::new();
    for code in CodeName::ALL {
        let Some(hand) = suite.get(code, Variant::Hand) else {
            continue;
        };
        let t = targets(code);
        let nosync = suite.require(code, Variant::AutoNoSync);
        rows.push(Table4Row {
            code,
            hand_seconds: hand.seconds,
            improvement: nosync.seconds / hand.seconds,
            hand_speedup: hand.speedup,
            paper_seconds: t.hand_seconds,
            paper_improvement: t.hand_improvement,
        });
    }
    Table4 { rows }
}

impl Table4 {
    /// Render the paper-vs-measured table.
    pub fn render(&self) -> String {
        let mut t = Table::new("Table 4: execution times (s) for manually altered Perfect codes");
        t.header(&[
            "code",
            "time s",
            "(paper)",
            "improvement",
            "(paper)",
            "speedup vs serial",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.code.to_string(),
                f1(r.hand_seconds),
                format!("({})", opt_f1(r.paper_seconds)),
                f1(r.improvement),
                format!("({})", opt_f1(r.paper_improvement)),
                f1(r.hand_speedup),
            ]);
        }
        t.render()
    }
}

//! Table 6: restructuring efficiency.
//!
//! Band counts of the compiler-restructured (automatable / autotasked)
//! versions:
//!
//! | level                       | Cedar   | Cray YMP |
//! |-----------------------------|---------|----------|
//! | High (E_p ≥ 1/2)            | 1 code  | 0 codes  |
//! | Intermediate (≥ 1/(2logP))  | 9 codes | 6 codes  |
//! | Unacceptable                | 3 codes | 7 codes  |

use cedar_methodology::ppt::{ppt3, Ppt3Report};
use cedar_perfect::codes::CodeName;
use cedar_perfect::reference::{paper, ymp};

use super::suite::PerfectSuite;
use crate::report::Table;

/// The whole Table 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    pub cedar: Ppt3Report,
    pub ymp: Ppt3Report,
}

/// Derive Table 6 from the measured suite (Cedar) and the YMP reference
/// speedups.
pub fn run(suite: &PerfectSuite) -> Table6 {
    let cedar_speedups = suite.automatable_speedups();
    let ymp_speedups: Vec<f64> = CodeName::ALL.iter().map(|&c| ymp(c).auto_speedup).collect();
    Table6 {
        cedar: ppt3("Cedar", &cedar_speedups, 32),
        ymp: ppt3("Cray YMP", &ymp_speedups, 8),
    }
}

impl Table6 {
    /// Render the paper-vs-measured table.
    pub fn render(&self) -> String {
        let mut t = Table::new("Table 6: restructuring efficiency (band counts)");
        t.header(&["level", "Cedar", "(paper)", "Cray YMP", "(paper)"]);
        t.row(vec![
            "High (Ep >= 1/2)".into(),
            self.cedar.high.to_string(),
            format!("({})", paper::CEDAR_BANDS.0),
            self.ymp.high.to_string(),
            format!("({})", paper::YMP_BANDS.0),
        ]);
        t.row(vec![
            "Intermediate (Ep >= 1/2logP)".into(),
            self.cedar.intermediate.to_string(),
            format!("({})", paper::CEDAR_BANDS.1),
            self.ymp.intermediate.to_string(),
            format!("({})", paper::YMP_BANDS.1),
        ]);
        t.row(vec![
            "Unacceptable".into(),
            self.cedar.unacceptable.to_string(),
            format!("({})", paper::CEDAR_BANDS.2),
            self.ymp.unacceptable.to_string(),
            format!("({})", paper::YMP_BANDS.2),
        ]);
        t.render()
    }
}
